//! Sectioned bitstream container and length-delimited frame packets.
//!
//! Two framing layers live here:
//!
//! * **Sections** — a coded frame in the NVC pipeline carries several
//!   independent streams (quantized motion latents, quantized residual
//!   latents, side information). The container frames them as
//!   `[tag: u8][len: u32 LE][payload]` sections so the decoder can route
//!   each stream to its synthesis module, mirroring how the paper's DMA
//!   controller distributes "Sparse Index / Intermediate data / Weight"
//!   regions.
//! * **Packets** — one [`Packet`] per coded frame wraps the frame's
//!   sections with a small header (`[len: u32 LE][frame_index: u32 LE]
//!   [frame_kind: u8][crc32: u32 LE]`) so bitstreams can be *streamed*:
//!   packets are length-delimited (a decoder can pull one frame at a time
//!   off a byte stream), truncation is always detected, and payload
//!   corruption is caught by the CRC before any entropy decoding runs.
//!
//! # Example
//!
//! ```
//! use nvc_entropy::container::{Section, SectionWriter, read_sections};
//! # fn main() -> Result<(), nvc_entropy::CodingError> {
//! let mut w = SectionWriter::new();
//! w.push(Section::Motion, vec![1, 2, 3]);
//! w.push(Section::Residual, vec![4]);
//! let bytes = w.finish();
//! let sections = read_sections(&bytes)?;
//! assert_eq!(sections.len(), 2);
//! assert_eq!(sections[0].0, Section::Motion);
//! assert_eq!(sections[1].1, vec![4]);
//! # Ok(())
//! # }
//! ```

use crate::CodingError;
use std::io::Read;

/// Section tags used by the codecs in this repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Section {
    /// Quantized motion latents.
    Motion,
    /// Quantized residual latents.
    Residual,
    /// Side information (entropy-model parameters, dynamic ranges).
    SideInfo,
    /// Intra-coded (keyframe) payload.
    Intra,
    /// In-band rate switch: a one-byte rate index (`RatePoint` index or
    /// QP) that replaces the stream's current rate from this frame on.
    /// Emitted only when the rate actually changes, so fixed-rate
    /// bitstreams carry no trace of it (byte-identical to streams coded
    /// before the section existed).
    Rate,
}

impl Section {
    fn tag(self) -> u8 {
        match self {
            Section::Motion => 0x4D,   // 'M'
            Section::Residual => 0x52, // 'R'
            Section::SideInfo => 0x53, // 'S'
            Section::Intra => 0x49,    // 'I'
            Section::Rate => 0x51,     // 'Q' (quantizer)
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodingError> {
        match tag {
            0x4D => Ok(Section::Motion),
            0x52 => Ok(Section::Residual),
            0x53 => Ok(Section::SideInfo),
            0x49 => Ok(Section::Intra),
            0x51 => Ok(Section::Rate),
            other => Err(CodingError::BadContainer {
                reason: format!("unknown tag 0x{other:02X}"),
            }),
        }
    }
}

/// Accumulates tagged sections into a frame payload.
#[derive(Debug, Clone, Default)]
pub struct SectionWriter {
    bytes: Vec<u8>,
}

impl SectionWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one section.
    pub fn push(&mut self, section: Section, payload: Vec<u8>) {
        self.bytes.push(section.tag());
        self.bytes
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.bytes.extend_from_slice(&payload);
    }

    /// Total bytes so far (including section headers).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether no sections were pushed.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Returns the framed bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// Parses a frame payload back into its sections, in order.
///
/// # Errors
///
/// Returns [`CodingError::BadContainer`] on truncation or unknown tags.
pub fn read_sections(bytes: &[u8]) -> Result<Vec<(Section, Vec<u8>)>, CodingError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if pos + 5 > bytes.len() {
            return Err(CodingError::BadContainer {
                reason: "truncated section header".into(),
            });
        }
        let section = Section::from_tag(bytes[pos])?;
        let len = u32::from_le_bytes(
            bytes[pos + 1..pos + 5]
                .try_into()
                .expect("slice is 4 bytes"),
        ) as usize;
        pos += 5;
        if pos + len > bytes.len() {
            return Err(CodingError::BadContainer {
                reason: format!("section claims {len} bytes, {} remain", bytes.len() - pos),
            });
        }
        out.push((section, bytes[pos..pos + len].to_vec()));
        pos += len;
    }
    Ok(out)
}

/// Finds the first section with the given tag.
///
/// # Errors
///
/// Returns [`CodingError::BadContainer`] if the section is absent (or the
/// container is malformed).
pub fn find_section(bytes: &[u8], section: Section) -> Result<Vec<u8>, CodingError> {
    read_sections(bytes)?
        .into_iter()
        .find(|(s, _)| *s == section)
        .map(|(_, payload)| payload)
        .ok_or_else(|| CodingError::BadContainer {
            reason: format!("missing section {section:?}"),
        })
}

/// Frame type carried in a packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Intra-coded frame: decodable without a reference; (re)starts the
    /// prediction chain. Its payload also carries the stream header when
    /// it is the first packet of a stream.
    Intra,
    /// Predicted frame: requires the previous reconstruction.
    Predicted,
}

impl FrameKind {
    fn tag(self) -> u8 {
        match self {
            FrameKind::Intra => 0x49,     // 'I'
            FrameKind::Predicted => 0x50, // 'P'
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodingError> {
        match tag {
            0x49 => Ok(FrameKind::Intra),
            0x50 => Ok(FrameKind::Predicted),
            other => Err(CodingError::BadContainer {
                reason: format!("unknown frame kind 0x{other:02X}"),
            }),
        }
    }
}

/// Size of the fixed packet header:
/// `[len: u32][frame_index: u32][frame_kind: u8][crc32: u32]`.
pub const PACKET_HEADER_BYTES: usize = 13;

/// Upper bound on a packet payload accepted by the incremental reader
/// ([`Packet::read_into`] / [`Packet::read_from`]). A coded frame in this
/// repository is kilobytes; the cap exists so a hostile length field read
/// off a socket can never force a multi-gigabyte allocation before the
/// CRC check has a chance to run.
pub const MAX_PAYLOAD_BYTES: usize = 64 << 20;

fn truncated(what: &str, e: std::io::Error) -> CodingError {
    CodingError::BadContainer {
        reason: format!("{what}: {e}"),
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One length-delimited coded frame of a packetized bitstream.
///
/// # Example
///
/// ```
/// use nvc_entropy::container::{FrameKind, Packet};
/// # fn main() -> Result<(), nvc_entropy::CodingError> {
/// let p = Packet::new(0, FrameKind::Intra, vec![1, 2, 3]);
/// let bytes = p.to_bytes();
/// let (back, consumed) = Packet::from_bytes(&bytes)?;
/// assert_eq!(back, p);
/// assert_eq!(consumed, bytes.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Zero-based frame index within the stream.
    pub frame_index: u32,
    /// Frame type.
    pub kind: FrameKind,
    /// The frame's coded payload (its sections).
    pub payload: Vec<u8>,
}

impl Packet {
    /// Creates a packet.
    pub fn new(frame_index: u32, kind: FrameKind, payload: Vec<u8>) -> Self {
        Packet {
            frame_index,
            kind,
            payload,
        }
    }

    /// Total serialized size (header + payload).
    pub fn encoded_len(&self) -> usize {
        PACKET_HEADER_BYTES + self.payload.len()
    }

    /// Serializes the packet: header followed by the payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.frame_index.to_le_bytes());
        out.push(self.kind.tag());
        out.extend_from_slice(&crc32(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses just the fixed header fields — `(frame_index, kind,
    /// payload_len)` — without copying the payload or checking its CRC.
    /// Cheap routing primitive for muxers/schedulers; full validation
    /// still happens in [`Packet::from_bytes`] / the decoder session.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadContainer`] on a truncated header or an
    /// unknown frame kind.
    pub fn peek_header(bytes: &[u8]) -> Result<(u32, FrameKind, usize), CodingError> {
        if bytes.len() < PACKET_HEADER_BYTES {
            return Err(CodingError::BadContainer {
                reason: format!(
                    "truncated packet header: {} of {PACKET_HEADER_BYTES} bytes",
                    bytes.len()
                ),
            });
        }
        let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
        let frame_index = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        let kind = FrameKind::from_tag(bytes[8])?;
        Ok((frame_index, kind, len))
    }

    /// Parses one packet off the front of `bytes`, validating the header
    /// and the payload CRC. Returns the packet and the number of bytes
    /// consumed (trailing bytes are left for the next packet). Thin
    /// wrapper over [`Packet::read_from`] with the slice as the reader.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadContainer`] on truncation, an unknown
    /// frame kind, an implausible length field, or a CRC mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Result<(Packet, usize), CodingError> {
        let mut cursor = bytes;
        let packet = Packet::read_from(&mut cursor)?;
        Ok((packet, bytes.len() - cursor.len()))
    }

    /// Reads exactly one packet off a byte stream, validating the header
    /// and the payload CRC — the incremental form of
    /// [`Packet::from_bytes`], for transports where the whole stream is
    /// never resident (sockets, files). Convenience wrapper over
    /// [`Packet::read_into`] that allocates a fresh payload.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Packet::read_into`].
    pub fn read_from(r: &mut impl Read) -> Result<Packet, CodingError> {
        let mut packet = Packet::new(0, FrameKind::Intra, Vec::new());
        packet.read_into(r)?;
        Ok(packet)
    }

    /// Reads one packet off a byte stream *into* `self`, reusing the
    /// existing payload allocation — the steady-state read primitive for
    /// a server pulling length-delimited frames off a socket without ever
    /// buffering the whole stream. Reads exactly one packet's bytes
    /// (header, then payload), leaving the reader positioned at the next
    /// packet.
    ///
    /// On error, `self` is left with unspecified (but valid) contents.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadContainer`] if the reader ends or fails
    /// mid-packet, on an unknown frame kind, a length field above
    /// [`MAX_PAYLOAD_BYTES`], or a CRC mismatch.
    pub fn read_into(&mut self, r: &mut impl Read) -> Result<(), CodingError> {
        let mut header = [0u8; PACKET_HEADER_BYTES];
        r.read_exact(&mut header)
            .map_err(|e| truncated("truncated packet header", e))?;
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let frame_index = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let kind = FrameKind::from_tag(header[8])?;
        let crc = u32::from_le_bytes(header[9..13].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD_BYTES {
            return Err(CodingError::BadContainer {
                reason: format!("packet claims {len} payload bytes (cap {MAX_PAYLOAD_BYTES})"),
            });
        }
        self.payload.clear();
        self.payload.resize(len, 0);
        r.read_exact(&mut self.payload)
            .map_err(|e| truncated("truncated packet payload", e))?;
        let actual = crc32(&self.payload);
        if actual != crc {
            return Err(CodingError::BadContainer {
                reason: format!("packet CRC mismatch: stored {crc:08X}, computed {actual:08X}"),
            });
        }
        self.frame_index = frame_index;
        self.kind = kind;
        Ok(())
    }
}

/// Splits a concatenated packet stream into per-packet byte slices using
/// only the length fields (no CRC validation — that happens when each
/// slice is handed to [`Packet::from_bytes`] or a decoder session).
///
/// The split detects any *mid-packet* truncation. Loss of whole trailing
/// packets is invisible here by design: a packet stream is open-ended
/// (a live encoder does not know its length up front), so total frame
/// count is transport-level metadata, exactly as in RTP-class protocols.
///
/// # Errors
///
/// Returns [`CodingError::BadContainer`] if the stream ends mid-packet.
pub fn split_packets(bytes: &[u8]) -> Result<Vec<&[u8]>, CodingError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if pos + PACKET_HEADER_BYTES > bytes.len() {
            return Err(CodingError::BadContainer {
                reason: "truncated packet header in stream".into(),
            });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let total =
            len.checked_add(PACKET_HEADER_BYTES)
                .ok_or_else(|| CodingError::BadContainer {
                    reason: format!("packet length {len} overflows"),
                })?;
        if total > bytes.len() - pos {
            return Err(CodingError::BadContainer {
                reason: format!(
                    "truncated packet in stream: claims {len} payload bytes, {} remain",
                    bytes.len() - pos - PACKET_HEADER_BYTES
                ),
            });
        }
        out.push(&bytes[pos..pos + total]);
        pos += total;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_sections() {
        let mut w = SectionWriter::new();
        w.push(Section::SideInfo, vec![9; 17]);
        w.push(Section::Motion, vec![1, 2]);
        w.push(Section::Residual, Vec::new());
        let bytes = w.finish();
        let sections = read_sections(&bytes).unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0], (Section::SideInfo, vec![9; 17]));
        assert_eq!(sections[1], (Section::Motion, vec![1, 2]));
        assert_eq!(sections[2], (Section::Residual, Vec::new()));
    }

    #[test]
    fn rate_section_roundtrips() {
        let mut w = SectionWriter::new();
        w.push(Section::Rate, vec![2]);
        w.push(Section::Motion, vec![1]);
        let sections = read_sections(&w.finish()).unwrap();
        assert_eq!(sections[0], (Section::Rate, vec![2]));
        assert_eq!(sections[1], (Section::Motion, vec![1]));
    }

    #[test]
    fn find_section_locates_payload() {
        let mut w = SectionWriter::new();
        w.push(Section::Motion, vec![5]);
        w.push(Section::Residual, vec![6, 7]);
        let bytes = w.finish();
        assert_eq!(find_section(&bytes, Section::Residual).unwrap(), vec![6, 7]);
        assert!(find_section(&bytes, Section::Intra).is_err());
    }

    #[test]
    fn detects_corruption() {
        let mut w = SectionWriter::new();
        w.push(Section::Motion, vec![1, 2, 3]);
        let mut bytes = w.finish();
        // Truncate payload.
        bytes.pop();
        assert!(read_sections(&bytes).is_err());
        // Unknown tag.
        let bad = vec![0xEE, 0, 0, 0, 0];
        assert!(read_sections(&bad).is_err());
        // Truncated header.
        assert!(read_sections(&[0x4D, 1]).is_err());
    }

    #[test]
    fn empty_container_is_valid() {
        assert!(read_sections(&[]).unwrap().is_empty());
        assert!(SectionWriter::new().is_empty());
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn packet_stream_splits_and_validates() {
        let a = Packet::new(0, FrameKind::Intra, vec![7; 10]);
        let b = Packet::new(1, FrameKind::Predicted, Vec::new());
        let mut stream = a.to_bytes();
        stream.extend(b.to_bytes());
        let chunks = split_packets(&stream).unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(Packet::from_bytes(chunks[0]).unwrap().0, a);
        assert_eq!(Packet::from_bytes(chunks[1]).unwrap().0, b);
        // Stream truncation is detected at the split layer.
        assert!(split_packets(&stream[..stream.len() - 1]).is_err());
        assert!(split_packets(&stream[..5]).is_err());
    }

    #[test]
    fn packet_rejects_hostile_length_field() {
        // Maximum u32 length must produce a clean error (no arithmetic
        // overflow), on every pointer width.
        let mut bytes = vec![0xFF, 0xFF, 0xFF, 0xFF]; // len = u32::MAX
        bytes.extend_from_slice(&0u32.to_le_bytes()); // frame_index
        bytes.push(0x49); // Intra
        bytes.extend_from_slice(&0u32.to_le_bytes()); // crc
        bytes.extend_from_slice(&[0; 64]);
        assert!(Packet::from_bytes(&bytes).is_err());
        assert!(split_packets(&bytes).is_err());
    }

    #[test]
    fn incremental_read_walks_a_stream_and_reuses_the_allocation() {
        let a = Packet::new(0, FrameKind::Intra, vec![9; 4096]);
        let b = Packet::new(1, FrameKind::Predicted, vec![3; 7]);
        let mut stream = a.to_bytes();
        stream.extend(b.to_bytes());
        let mut r: &[u8] = &stream;

        let mut scratch = Packet::new(0, FrameKind::Intra, Vec::new());
        scratch.read_into(&mut r).unwrap();
        assert_eq!(scratch, a);
        let cap_after_big = scratch.payload.capacity();
        scratch.read_into(&mut r).unwrap();
        assert_eq!(scratch, b);
        assert_eq!(
            scratch.payload.capacity(),
            cap_after_big,
            "small read must reuse the large payload allocation"
        );
        assert!(r.is_empty(), "reader stops exactly at the packet boundary");
        // A further read hits EOF cleanly.
        assert!(scratch.read_into(&mut r).is_err());
    }

    #[test]
    fn incremental_read_detects_truncation_and_corruption() {
        let p = Packet::new(2, FrameKind::Predicted, vec![1, 2, 3, 4, 5]);
        let bytes = p.to_bytes();
        // Truncation at every prefix fails cleanly.
        for cut in 0..bytes.len() {
            let mut r = &bytes[..cut];
            assert!(Packet::read_from(&mut r).is_err(), "cut {cut}");
        }
        // Whole packet round-trips.
        let mut r: &[u8] = &bytes;
        assert_eq!(Packet::read_from(&mut r).unwrap(), p);
        // Payload corruption is caught by the CRC.
        let mut corrupt = bytes.clone();
        *corrupt.last_mut().unwrap() ^= 1;
        assert!(Packet::read_from(&mut &corrupt[..]).is_err());
    }

    #[test]
    fn incremental_read_caps_hostile_lengths() {
        // A length just above the cap must be rejected before any
        // payload allocation happens, even though "enough" bytes could
        // keep streaming in.
        let mut bytes = ((MAX_PAYLOAD_BYTES + 1) as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.push(0x49);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut r: &[u8] = &bytes;
        let err = Packet::read_from(&mut r).unwrap_err();
        assert!(format!("{err}").contains("cap"), "{err}");
    }

    #[test]
    fn packet_rejects_bad_kind_and_crc() {
        let p = Packet::new(4, FrameKind::Predicted, vec![1, 2, 3, 4]);
        let mut bytes = p.to_bytes();
        bytes[8] = 0xFF; // invalid frame kind
        assert!(Packet::from_bytes(&bytes).is_err());
        let mut bytes = p.to_bytes();
        *bytes.last_mut().unwrap() ^= 1; // payload corruption
        assert!(Packet::from_bytes(&bytes).is_err());
    }
}
