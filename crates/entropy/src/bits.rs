//! MSB-first bit I/O and Exp-Golomb codes.

use crate::CodingError;

/// MSB-first bit writer.
///
/// # Example
///
/// ```
/// use nvc_entropy::{BitReader, BitWriter};
/// # fn main() -> Result<(), nvc_entropy::CodingError> {
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_ue(17);
/// w.write_se(-4);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.read_ue()?, 17);
/// assert_eq!(r.read_se()?, -4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    acc: u8,
    nbits: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the lowest `n` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn write_bits(&mut self, value: u32, n: u8) {
        assert!(n <= 32, "cannot write more than 32 bits at once");
        for i in (0..n).rev() {
            let bit = (value >> i) & 1;
            self.acc = (self.acc << 1) | bit as u8;
            self.nbits += 1;
            if self.nbits == 8 {
                self.bytes.push(self.acc);
                self.acc = 0;
                self.nbits = 0;
            }
        }
    }

    /// Writes one bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(u32::from(bit), 1);
    }

    /// Writes an unsigned Exp-Golomb code (H.264 `ue(v)`).
    pub fn write_ue(&mut self, value: u32) {
        let x = value as u64 + 1;
        let len = 64 - x.leading_zeros();
        self.write_bits(0, (len - 1) as u8);
        self.write_bits(x as u32, len as u8);
    }

    /// Writes a signed Exp-Golomb code (H.264 `se(v)`).
    pub fn write_se(&mut self, value: i32) {
        let mapped = if value > 0 {
            (value as u32) * 2 - 1
        } else {
            (-(value as i64) * 2) as u32
        };
        self.write_ue(mapped);
    }

    /// Number of whole bytes written so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty() && self.nbits == 0
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.nbits as usize
    }

    /// Pads with zero bits to a byte boundary and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.acc <<= 8 - self.nbits;
            self.bytes.push(self.acc);
        }
        self.bytes
    }
}

/// MSB-first bit reader.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    bit: u8,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            bit: 0,
        }
    }

    /// Reads `n` bits MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::UnexpectedEof`] past the end of input.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn read_bits(&mut self, n: u8) -> Result<u32, CodingError> {
        assert!(n <= 32, "cannot read more than 32 bits at once");
        let mut out = 0u32;
        for _ in 0..n {
            let byte = self.bytes.get(self.pos).ok_or(CodingError::UnexpectedEof)?;
            let bit = (byte >> (7 - self.bit)) & 1;
            out = (out << 1) | bit as u32;
            self.bit += 1;
            if self.bit == 8 {
                self.bit = 0;
                self.pos += 1;
            }
        }
        Ok(out)
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::UnexpectedEof`] past the end of input.
    pub fn read_bit(&mut self) -> Result<bool, CodingError> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Reads an unsigned Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::UnexpectedEof`] past the end of input.
    pub fn read_ue(&mut self) -> Result<u32, CodingError> {
        let mut zeros = 0u8;
        while !self.read_bit()? {
            zeros += 1;
            if zeros > 32 {
                return Err(CodingError::UnexpectedEof);
            }
        }
        let rest = if zeros == 0 {
            0
        } else {
            self.read_bits(zeros)?
        };
        Ok((1u32 << zeros) - 1 + rest)
    }

    /// Reads a signed Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::UnexpectedEof`] past the end of input.
    pub fn read_se(&mut self) -> Result<i32, CodingError> {
        let mapped = self.read_ue()?;
        Ok(if mapped % 2 == 1 {
            mapped.div_ceil(2) as i32
        } else {
            -((mapped / 2) as i32)
        })
    }

    /// Bits consumed so far.
    pub fn bit_position(&self) -> usize {
        self.pos * 8 + self.bit as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD, 16);
        w.write_bits(0b1, 1);
        w.write_bits(0x3F, 6);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(16).unwrap(), 0xDEAD);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(6).unwrap(), 0x3F);
    }

    #[test]
    fn exp_golomb_known_codes() {
        // ue(0) = "1", ue(1) = "010", ue(2) = "011".
        let mut w = BitWriter::new();
        w.write_ue(0);
        w.write_ue(1);
        w.write_ue(2);
        assert_eq!(w.bit_len(), 1 + 3 + 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_ue().unwrap(), 0);
        assert_eq!(r.read_ue().unwrap(), 1);
        assert_eq!(r.read_ue().unwrap(), 2);
    }

    #[test]
    fn exp_golomb_roundtrip_many() {
        let values: Vec<u32> = (0..200).map(|i| i * i % 1021).collect();
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_ue(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_ue().unwrap(), v);
        }
    }

    #[test]
    fn signed_exp_golomb_roundtrip() {
        let values: Vec<i32> = (-60..=60).collect();
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_se(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_se().unwrap(), v);
        }
    }

    #[test]
    fn eof_detection() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bits(1).unwrap_err(), CodingError::UnexpectedEof);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert!(w.is_empty());
        w.write_bits(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        assert_eq!(w.len(), 0);
        w.write_bits(0, 5);
        assert_eq!(w.len(), 1);
    }
}
