//! LZMA-style carry-propagating range coder.
//!
//! The coder works on explicit cumulative-frequency intervals
//! ([`Interval`]) under a model total, so any model that can produce
//! `(cum_low, cum_high, total)` triples can drive it. Totals must stay
//! below 2²² so `range / total` never becomes zero after normalization.

use crate::models::Interval;

const TOP: u32 = 1 << 24;

/// Maximum allowed model total (exclusive).
pub(crate) const MAX_TOTAL: u32 = 1 << 22;

/// Range encoder producing a byte vector.
///
/// See the crate-level example for coupled encoder/decoder usage.
#[derive(Debug, Clone)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    bytes: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        RangeEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            bytes: Vec::new(),
        }
    }

    /// Encodes one symbol occupying `interval` under a model with total
    /// frequency `total`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty, exceeds `total`, or `total` is not
    /// in `1..2²²`.
    pub fn encode(&mut self, interval: &Interval, total: u32) {
        assert!(total > 0 && total < MAX_TOTAL, "total {total} out of range");
        assert!(
            interval.low < interval.high && interval.high <= total,
            "bad interval {interval:?} for total {total}"
        );
        let r = self.range / total;
        self.low += r as u64 * interval.low as u64;
        self.range = r * (interval.high - interval.low);
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    fn shift_low(&mut self) {
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            let mut cs = self.cache_size;
            while cs != 0 {
                self.bytes.push(self.cache.wrapping_add(carry));
                self.cache = 0xFF;
                cs -= 1;
            }
            self.cache = (self.low >> 24) as u8;
            self.cache_size = 0;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Number of bytes emitted so far (excluding buffered carry bytes).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Flushes the coder state and returns the finished byte stream.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.bytes
    }
}

/// Range decoder consuming a byte slice produced by [`RangeEncoder`].
#[derive(Debug, Clone)]
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Creates a decoder over `bytes`. Reading past the end yields zero
    /// bytes, matching the encoder's implicit zero tail.
    pub fn new(bytes: &'a [u8]) -> Self {
        let mut dec = RangeDecoder {
            code: 0,
            range: u32::MAX,
            bytes,
            pos: 0,
        };
        // First byte is the encoder's initial zero cache; skip it, then
        // load 4 code bytes.
        dec.next_byte();
        for _ in 0..4 {
            dec.code = (dec.code << 8) | dec.next_byte() as u32;
        }
        dec
    }

    fn next_byte(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Returns the cumulative frequency the next symbol falls into, for a
    /// model with total frequency `total`. Must be followed by
    /// [`decode_update`](Self::decode_update) with the symbol's interval.
    ///
    /// # Panics
    ///
    /// Panics if `total` is not in `1..2²²`.
    pub fn decode_freq(&mut self, total: u32) -> u32 {
        assert!(total > 0 && total < MAX_TOTAL, "total {total} out of range");
        self.range /= total;
        (self.code / self.range).min(total - 1)
    }

    /// Consumes the symbol occupying `interval` (as returned by the model
    /// for the frequency from [`decode_freq`](Self::decode_freq)).
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    pub fn decode_update(&mut self, interval: &Interval, _total: u32) {
        assert!(interval.low < interval.high, "bad interval {interval:?}");
        self.code -= interval.low * self.range;
        self.range *= interval.high - interval.low;
        while self.range < TOP {
            self.code = (self.code << 8) | self.next_byte() as u32;
            self.range <<= 8;
        }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::Histogram;
    use nvc_tensor::init::SplitMix64;

    /// Thin uniform-range wrapper over the workspace's shared PRNG.
    struct TestRng(SplitMix64);

    impl TestRng {
        fn seeded(seed: u64) -> Self {
            TestRng(SplitMix64::new(seed))
        }

        /// Uniform in `[lo, hi)`.
        fn range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + self.0.next_u64() % (hi - lo)
        }
    }

    fn roundtrip(symbols: &[u32], model: &Histogram) -> Vec<u32> {
        let mut enc = RangeEncoder::new();
        for &s in symbols {
            enc.encode(&model.interval(s), model.total());
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        symbols
            .iter()
            .map(|_| {
                let f = dec.decode_freq(model.total());
                let (s, iv) = model.lookup(f);
                dec.decode_update(&iv, model.total());
                s
            })
            .collect()
    }

    #[test]
    fn empty_stream() {
        let enc = RangeEncoder::new();
        assert!(enc.is_empty());
        let bytes = enc.finish();
        assert_eq!(bytes.len(), 5);
    }

    #[test]
    fn static_uniform_roundtrip() {
        let model = Histogram::uniform(16);
        let symbols: Vec<u32> = (0..500).map(|i| (i * 7 + 3) % 16).collect();
        assert_eq!(roundtrip(&symbols, &model), symbols);
    }

    #[test]
    fn skewed_model_compresses() {
        // 99% zeros under a strongly skewed model: ~0.08 bits/symbol ideal.
        let mut freqs = vec![1u32; 4];
        freqs[0] = 1000;
        let model = Histogram::from_freqs(&freqs).unwrap();
        let symbols: Vec<u32> = (0..10_000).map(|i| u32::from(i % 100 == 0)).collect();
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            enc.encode(&model.interval(s), model.total());
        }
        let bytes = enc.finish();
        // Ideal ≈ 10000 * H ≈ 10000 * 0.09 bits ≈ 115 bytes.
        assert!(bytes.len() < 400, "got {} bytes", bytes.len());
        let mut dec = RangeDecoder::new(&bytes);
        for &expect in &symbols {
            let f = dec.decode_freq(model.total());
            let (s, iv) = model.lookup(f);
            dec.decode_update(&iv, model.total());
            assert_eq!(s, expect);
        }
    }

    #[test]
    fn random_models_random_symbols_roundtrip() {
        let mut rng = TestRng::seeded(0xC0DE);
        for _ in 0..20 {
            let n_sym = rng.range(2, 40) as usize;
            let freqs: Vec<u32> = (0..n_sym).map(|_| rng.range(1, 500) as u32).collect();
            let model = Histogram::from_freqs(&freqs).unwrap();
            let symbols: Vec<u32> = (0..rng.range(1, 2000))
                .map(|_| rng.range(0, n_sym as u64) as u32)
                .collect();
            assert_eq!(roundtrip(&symbols, &model), symbols);
        }
    }

    #[test]
    fn adaptive_model_roundtrip() {
        let mut rng = TestRng::seeded(7);
        let symbols: Vec<u32> = (0..3000).map(|_| rng.range(0, 8) as u32).collect();
        let mut enc_model = Histogram::uniform(8);
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            enc.encode(&enc_model.interval(s), enc_model.total());
            enc_model.record(s);
        }
        let bytes = enc.finish();
        let mut dec_model = Histogram::uniform(8);
        let mut dec = RangeDecoder::new(&bytes);
        for &expect in &symbols {
            let f = dec.decode_freq(dec_model.total());
            let (s, iv) = dec_model.lookup(f);
            dec.decode_update(&iv, dec_model.total());
            dec_model.record(s);
            assert_eq!(s, expect);
        }
    }

    #[test]
    #[should_panic(expected = "total")]
    fn rejects_oversized_total() {
        let mut enc = RangeEncoder::new();
        enc.encode(&Interval { low: 0, high: 1 }, 1 << 23);
    }
}
