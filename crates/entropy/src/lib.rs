//! Entropy-coding substrate: bit I/O, a byte-oriented range coder,
//! parametric symbol models and a sectioned bitstream container.
//!
//! The NVC pipeline of the paper quantizes motion and residual latents and
//! "forms them into bitstreams for transmission" (§II). This crate
//! provides that machinery from scratch so the reproduction measures
//! *real* bits per pixel rather than estimated entropies:
//!
//! * [`RangeEncoder`] / [`RangeDecoder`] — an LZMA-style carry-propagating
//!   range coder, exact to the frequency tables it is driven with.
//! * [`LaplaceModel`] — a discretized, frequency-quantized Laplace
//!   distribution; the factorized prior used for latent coding (learned
//!   codecs fit these scales per channel, we fit them to the synthetic
//!   weight construction).
//! * [`Histogram`] — an adaptive frequency model for token streams (used
//!   by the classical baseline codec).
//! * [`BitWriter`] / [`BitReader`] — MSB-first bit I/O with Exp-Golomb
//!   codes for headers and side information.
//! * [`container`] — a tagged-section frame container so motion, residual
//!   and side-info streams can be interleaved and parsed back.
//!
//! # Example
//!
//! ```
//! use nvc_entropy::{Histogram, RangeDecoder, RangeEncoder};
//!
//! let mut model = Histogram::uniform(4);
//! let mut enc = RangeEncoder::new();
//! let symbols = [0u32, 1, 1, 3, 2, 1, 1, 0];
//! let mut m = model.clone();
//! for &s in &symbols {
//!     enc.encode(&m.interval(s), m.total());
//!     m.record(s);
//! }
//! let bytes = enc.finish();
//! let mut dec = RangeDecoder::new(&bytes);
//! for &expect in &symbols {
//!     let f = dec.decode_freq(model.total());
//!     let (s, iv) = model.lookup(f);
//!     dec.decode_update(&iv, model.total());
//!     model.record(s);
//!     assert_eq!(s, expect);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bits;
pub mod container;
mod models;
mod range;

pub use bits::{BitReader, BitWriter};
pub use models::{Histogram, Interval, LaplaceModel};
pub use range::{RangeDecoder, RangeEncoder};

use std::error::Error;
use std::fmt;

/// Error type for entropy-coding operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodingError {
    /// The decoder ran out of input bytes.
    UnexpectedEof,
    /// A model was constructed with an invalid parameter.
    InvalidModel {
        /// Human-readable description.
        reason: String,
    },
    /// A container section was malformed.
    BadContainer {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodingError::UnexpectedEof => write!(f, "unexpected end of bitstream"),
            CodingError::InvalidModel { reason } => write!(f, "invalid entropy model: {reason}"),
            CodingError::BadContainer { reason } => write!(f, "malformed container: {reason}"),
        }
    }
}

impl Error for CodingError {}
