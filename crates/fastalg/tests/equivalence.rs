//! Randomized-but-deterministic equivalence tests: the fast
//! (transform-domain) operators must reproduce the direct operators for
//! arbitrary inputs and weights, and pruning must behave monotonically.
//! Case generation uses the in-tree SplitMix64 PRNG from `nvc-tensor`.

use nvc_core::ExecCtx;
use nvc_fastalg::{fta_t3_6x6_4x4, prune, winograd_f2x2_3x3, FastConv2d, FastDeConv2d, Sparsity};
use nvc_tensor::init::SplitMix64;
use nvc_tensor::mat::Mat;
use nvc_tensor::ops::{Conv2d, DeConv2d};
use nvc_tensor::{Shape, Tensor};

const CASES: usize = 32;

fn rand_tensor(rng: &mut SplitMix64, c: usize, h: usize, w: usize) -> Tensor {
    let data: Vec<f32> = (0..c * h * w).map(|_| rng.next_f32() * 4.0 - 2.0).collect();
    Tensor::from_vec(Shape::new(1, c, h, w), data).unwrap()
}

/// Winograd F(2x2,3x3) equals direct 3x3 convolution for any input.
#[test]
fn fast_conv_equals_direct() {
    let mut rng = SplitMix64::new(0xFA57_0001);
    for _ in 0..CASES {
        let x = rand_tensor(&mut rng, 3, 9, 11);
        let seed = rng.next_u64() % 500;
        let conv = Conv2d::randn(4, 3, 3, 1, 1, seed).unwrap();
        let fast = FastConv2d::from_conv(&conv).unwrap();
        let direct = conv.forward(&x).unwrap();
        let fastv = fast.forward(&x).unwrap();
        let scale = direct.max_abs().max(1.0);
        assert!(direct.sub(&fastv).unwrap().max_abs() < 1e-3 * scale);
    }
}

/// FTA T3(6x6,4x4) equals direct 4x4 stride-2 deconvolution.
#[test]
fn fast_deconv_equals_direct() {
    let mut rng = SplitMix64::new(0xFA57_0002);
    for _ in 0..CASES {
        let x = rand_tensor(&mut rng, 2, 7, 5);
        let seed = rng.next_u64() % 500;
        let deconv = DeConv2d::randn(3, 2, 4, 2, 1, seed).unwrap();
        let fast = FastDeConv2d::from_deconv(&deconv).unwrap();
        let direct = deconv.forward(&x).unwrap();
        let fastv = fast.forward(&x).unwrap();
        assert_eq!(direct.shape(), fastv.shape());
        let scale = direct.max_abs().max(1.0);
        assert!(direct.sub(&fastv).unwrap().max_abs() < 1e-3 * scale);
    }
}

/// Pruning is monotone: higher sparsity keeps a subset of the scores,
/// and kept counts decrease.
#[test]
fn pruning_is_monotone() {
    let mut rng = SplitMix64::new(0xFA57_0003);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 500;
        for t in [winograd_f2x2_3x3(), fta_t3_6x6_4x4()] {
            let k = t.kernel();
            let w = Mat::from_vec(k, k, nvc_tensor::init::randn_vec(k * k, 1.0, seed)).unwrap();
            let e = t.transform_kernel(&w).unwrap();
            let mut prev_kept = usize::MAX;
            for rho in [0.0, 0.25, 0.5, 0.75] {
                let rep = prune(&t, &e, Sparsity::new(rho).unwrap()).unwrap();
                assert!(rep.kept <= prev_kept);
                assert_eq!(rep.kept + rep.pruned, t.mu() * t.mu());
                prev_kept = rep.kept;
            }
        }
    }
}

/// The masked kernel always has its non-zeros among the original
/// kernel's positions (pruning never invents weights).
#[test]
fn pruning_never_invents_weights() {
    let mut rng = SplitMix64::new(0xFA57_0004);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 500;
        let t = fta_t3_6x6_4x4();
        let w = Mat::from_vec(4, 4, nvc_tensor::init::randn_vec(16, 1.0, seed)).unwrap();
        let e = t.transform_kernel(&w).unwrap();
        let rep = prune(&t, &e, Sparsity::new(0.5).unwrap()).unwrap();
        for (orig, masked) in e.as_slice().iter().zip(rep.masked.as_slice()) {
            assert!(*masked == 0.0 || masked == orig);
        }
    }
}

/// Worker counts the determinism sweep exercises: serial, even/odd
/// splits, more workers than work.
const THREAD_SWEEP: [usize; 4] = [1, 2, 5, 16];

/// Parallel execution of every parallelized operator is bit-identical to
/// serial execution — the partition is over output channels/tiles only
/// and each accumulation keeps a fixed summation order.
#[test]
fn parallel_operators_are_bit_exact() {
    let mut rng = SplitMix64::new(0xFA57_0006);
    for case in 0..8 {
        // Odd sizes force partial tiles and uneven chunk partitions.
        let x = rand_tensor(&mut rng, 3, 11, 13);
        let seed = rng.next_u64() % 500;
        let conv = Conv2d::randn(5, 3, 3, 1, 1, seed).unwrap();
        let fast =
            FastConv2d::from_conv_pruned(&conv, Sparsity::new(0.25 * (case % 3) as f64).unwrap())
                .unwrap();
        let deconv = DeConv2d::randn(4, 3, 4, 2, 1, seed ^ 7).unwrap();
        let fast_de = FastDeConv2d::from_deconv(&deconv).unwrap();

        let conv_ref = conv.forward(&x).unwrap();
        let fast_ref = fast.forward(&x).unwrap();
        let deconv_ref = deconv.forward(&x).unwrap();
        let fast_de_ref = fast_de.forward(&x).unwrap();
        for threads in THREAD_SWEEP {
            let ctx = ExecCtx::with_threads(threads);
            assert_eq!(
                conv.forward_ctx(&x, &ctx).unwrap().as_slice(),
                conv_ref.as_slice(),
                "Conv2d diverged at {threads} threads"
            );
            assert_eq!(
                fast.forward_ctx(&x, &ctx).unwrap().as_slice(),
                fast_ref.as_slice(),
                "FastConv2d diverged at {threads} threads"
            );
            assert_eq!(
                deconv.forward_ctx(&x, &ctx).unwrap().as_slice(),
                deconv_ref.as_slice(),
                "DeConv2d diverged at {threads} threads"
            );
            assert_eq!(
                fast_de.forward_ctx(&x, &ctx).unwrap().as_slice(),
                fast_de_ref.as_slice(),
                "FastDeConv2d diverged at {threads} threads"
            );
        }
    }
}

/// A layer large enough to split into multiple staging bands (the tiled
/// executor bounds its transform-domain buffer to ~8 MB) still matches
/// the direct operator and stays bit-exact across thread counts.
#[test]
fn multi_band_execution_matches_direct() {
    let mut rng = SplitMix64::new(0xFA57_0008);
    // 64 in-channels at 96x96 -> 192x192 output: 32x32 FTA tiles at
    // 64·64 floats each = two bands at the executor's budget.
    let x = rand_tensor(&mut rng, 64, 96, 96);
    let deconv = DeConv2d::randn(3, 64, 4, 2, 1, 901).unwrap();
    let fast = FastDeConv2d::from_deconv(&deconv).unwrap();
    let direct = deconv.forward(&x).unwrap();
    let fastv = fast.forward(&x).unwrap();
    assert_eq!(direct.shape(), fastv.shape());
    let scale = direct.max_abs().max(1.0);
    assert!(direct.sub(&fastv).unwrap().max_abs() < 1e-2 * scale);
    let par = fast.forward_ctx(&x, &ExecCtx::with_threads(4)).unwrap();
    assert_eq!(fastv.as_slice(), par.as_slice());
}

/// A context's scratch pool is reused across calls without leaking state
/// between forward passes.
#[test]
fn scratch_reuse_does_not_change_results() {
    let mut rng = SplitMix64::new(0xFA57_0007);
    let ctx = ExecCtx::with_threads(3);
    let conv = Conv2d::randn(4, 2, 3, 1, 1, 42).unwrap();
    let fast = FastConv2d::from_conv(&conv).unwrap();
    for _ in 0..4 {
        let x = rand_tensor(&mut rng, 2, 9, 7);
        let fresh = fast.forward_ctx(&x, &ExecCtx::with_threads(3)).unwrap();
        let reused = fast.forward_ctx(&x, &ctx).unwrap();
        assert_eq!(fresh.as_slice(), reused.as_slice());
    }
}

/// Reference "dense application" of a fast conv's (possibly pruned)
/// kernels: the padded-buffer execution the executor used before
/// compressed-kernel execution — per tile, every kernel multiplies all
/// µ² positions (pruned positions contribute exactly `+0.0`), `c_in`
/// ascending. The compressed executor must match this **bit for bit**:
/// an IEEE-754 accumulator seeded with `+0.0` is unaffected by adding
/// the `±0.0` of a pruned position.
fn dense_apply_conv(fast: &FastConv2d, input: &Tensor) -> Tensor {
    let t = fast.transform();
    let (p, m, mu) = (t.patch(), t.tile(), t.mu());
    let mu2 = mu * mu;
    let (n, _, h, w) = input.shape().dims();
    let (ty_n, tx_n) = fast.tile_count(h, w);
    let step = t.in_step();
    let offset = t.in_offset() as isize;
    let mut out = Tensor::zeros(Shape::new(n, fast.c_out(), h, w));
    // Padded dense buffers reconstructed from the compressed kernels.
    let dense: Vec<Vec<f32>> = (0..fast.c_out())
        .flat_map(|co| (0..fast.c_in()).map(move |ci| (co, ci)))
        .map(|(co, ci)| fast.kernel(co, ci).to_dense().as_slice().to_vec())
        .collect();
    let mut patch = vec![0.0_f32; p * p];
    let mut y_tiles = vec![0.0_f32; fast.c_in() * mu2];
    let mut u_acc = vec![0.0_f32; mu2];
    let mut v = vec![0.0_f32; m * m];
    for nn in 0..n {
        for ty in 0..ty_n {
            for tx in 0..tx_n {
                let iy0 = (ty * step) as isize - offset;
                let ix0 = (tx * step) as isize - offset;
                for ci in 0..fast.c_in() {
                    for py in 0..p {
                        for px in 0..p {
                            patch[py * p + px] =
                                input.at_padded(nn, ci, iy0 + py as isize, ix0 + px as isize);
                        }
                    }
                    t.transform_input_slice(&patch, &mut y_tiles[ci * mu2..ci * mu2 + mu2]);
                }
                for co in 0..fast.c_out() {
                    u_acc.iter_mut().for_each(|a| *a = 0.0);
                    for ci in 0..fast.c_in() {
                        let e = &dense[co * fast.c_in() + ci];
                        let y = &y_tiles[ci * mu2..][..mu2];
                        for ((a, &ev), &yv) in u_acc.iter_mut().zip(e).zip(y) {
                            *a += ev * yv;
                        }
                    }
                    t.inverse_slice(&u_acc, &mut v);
                    for vy in 0..m.min(h - ty * m) {
                        for vx in 0..m.min(w - tx * m) {
                            *out.at_mut(nn, co, ty * m + vy, tx * m + vx) = v[vy * m + vx];
                        }
                    }
                }
            }
        }
    }
    out
}

/// Satellite coverage for compressed-kernel execution: at every pruning
/// level the executor consumes the `(value, index)` form, and the result
/// must be bit-for-bit identical to applying the same pruned kernels
/// densely over a zero-padded buffer.
#[test]
fn sparse_apply_matches_dense_apply_bit_for_bit() {
    let mut rng = SplitMix64::new(0xFA57_0009);
    for rho in [0.25, 0.5, 0.75, 0.9] {
        for case in 0..4 {
            // Odd sizes force partial tiles at the right/bottom borders.
            let x = rand_tensor(&mut rng, 3, 11, 13);
            let seed = rng.next_u64() % 500;
            let conv = Conv2d::randn(4, 3, 3, 1, 1, seed).unwrap();
            let fast = FastConv2d::from_conv_pruned(&conv, Sparsity::new(rho).unwrap()).unwrap();
            let reference = dense_apply_conv(&fast, &x);
            let got = fast.forward(&x).unwrap();
            assert_eq!(
                got.as_slice(),
                reference.as_slice(),
                "rho={rho} case={case}: compressed execution diverged from dense application"
            );
            // Bias rides on top of the tile sums; re-check with one.
            let mut biased = conv.clone();
            biased.bias_mut()[1] = 0.375;
            let fast_b =
                FastConv2d::from_conv_pruned(&biased, Sparsity::new(rho).unwrap()).unwrap();
            let with_bias = fast_b.forward(&x).unwrap();
            let base = fast.forward(&x).unwrap();
            for c in 0..4 {
                let expect = if c == 1 { 0.375 } else { 0.0 };
                let d = with_bias
                    .as_slice()
                    .iter()
                    .zip(base.as_slice())
                    .skip(c * 11 * 13)
                    .take(11 * 13)
                    .map(|(a, b)| (a - b - expect).abs())
                    .fold(0.0_f32, f32::max);
                assert!(d < 1e-6, "rho={rho}: bias handling drifted by {d}");
            }
        }
    }
}

/// The deconv executor's compressed path must also match dense
/// application bit for bit at every pruning level. (The executor is
/// shared with conv, but the T3 geometry exercises µ = 8 and the
/// two-phase output tiling differently.)
#[test]
fn sparse_deconv_matches_sparsely_reconstructed_dense_kernels() {
    let mut rng = SplitMix64::new(0xFA57_000A);
    for rho in [0.25, 0.5, 0.75, 0.9] {
        let x = rand_tensor(&mut rng, 2, 7, 5);
        let seed = rng.next_u64() % 500;
        let deconv = DeConv2d::randn(3, 2, 4, 2, 1, seed).unwrap();
        let fast = FastDeConv2d::from_deconv_pruned(&deconv, Sparsity::new(rho).unwrap()).unwrap();
        let got = fast.forward(&x).unwrap();
        // Dense-apply reference: every masked kernel reconstructed to
        // its padded µ² buffer and multiplied in full, c_in ascending.
        let t = fast.transform();
        let (p, m, mu) = (t.patch(), t.tile(), t.mu());
        let mu2 = mu * mu;
        let (ty_n, tx_n) = fast.tile_count(7, 5);
        let (oh, ow) = (14, 10);
        let step = t.in_step();
        let offset = t.in_offset() as isize;
        let mut reference = Tensor::zeros(Shape::new(1, 3, oh, ow));
        let mut patch = vec![0.0_f32; p * p];
        let mut y_tiles = vec![0.0_f32; 2 * mu2];
        let mut u_acc = vec![0.0_f32; mu2];
        let mut v = vec![0.0_f32; m * m];
        for ty in 0..ty_n {
            for tx in 0..tx_n {
                let iy0 = (ty * step) as isize - offset;
                let ix0 = (tx * step) as isize - offset;
                for ci in 0..2 {
                    for py in 0..p {
                        for px in 0..p {
                            patch[py * p + px] =
                                x.at_padded(0, ci, iy0 + py as isize, ix0 + px as isize);
                        }
                    }
                    t.transform_input_slice(&patch, &mut y_tiles[ci * mu2..ci * mu2 + mu2]);
                }
                for co in 0..3 {
                    u_acc.iter_mut().for_each(|a| *a = 0.0);
                    for ci in 0..2 {
                        let e = fast.kernel(co, ci).to_dense();
                        let y = &y_tiles[ci * mu2..][..mu2];
                        for ((a, &ev), &yv) in u_acc.iter_mut().zip(e.as_slice()).zip(y) {
                            *a += ev * yv;
                        }
                    }
                    t.inverse_slice(&u_acc, &mut v);
                    for vy in 0..m.min(oh - ty * m) {
                        for vx in 0..m.min(ow - tx * m) {
                            *reference.at_mut(0, co, ty * m + vy, tx * m + vx) = v[vy * m + vx];
                        }
                    }
                }
            }
        }
        assert_eq!(
            got.as_slice(),
            reference.as_slice(),
            "rho={rho}: deconv compressed execution diverged from dense application"
        );
    }
}

/// A sparse fast conv at rho=0 equals the dense fast conv exactly.
#[test]
fn zero_sparsity_equals_dense() {
    let mut rng = SplitMix64::new(0xFA57_0005);
    for _ in 0..CASES {
        let x = rand_tensor(&mut rng, 2, 6, 6);
        let seed = rng.next_u64() % 200;
        let conv = Conv2d::randn(2, 2, 3, 1, 1, seed).unwrap();
        let dense = FastConv2d::from_conv(&conv).unwrap();
        let rho0 = FastConv2d::from_conv_pruned(&conv, Sparsity::dense()).unwrap();
        let a = dense.forward(&x).unwrap();
        let b = rho0.forward(&x).unwrap();
        assert!(a.sub(&b).unwrap().max_abs() == 0.0);
    }
}
