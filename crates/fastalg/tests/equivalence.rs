//! Randomized-but-deterministic equivalence tests: the fast
//! (transform-domain) operators must reproduce the direct operators for
//! arbitrary inputs and weights, and pruning must behave monotonically.
//! Case generation uses the in-tree SplitMix64 PRNG from `nvc-tensor`.

use nvc_fastalg::{fta_t3_6x6_4x4, prune, winograd_f2x2_3x3, FastConv2d, FastDeConv2d, Sparsity};
use nvc_tensor::init::SplitMix64;
use nvc_tensor::mat::Mat;
use nvc_tensor::ops::{Conv2d, DeConv2d};
use nvc_tensor::{Shape, Tensor};

const CASES: usize = 32;

fn rand_tensor(rng: &mut SplitMix64, c: usize, h: usize, w: usize) -> Tensor {
    let data: Vec<f32> = (0..c * h * w).map(|_| rng.next_f32() * 4.0 - 2.0).collect();
    Tensor::from_vec(Shape::new(1, c, h, w), data).unwrap()
}

/// Winograd F(2x2,3x3) equals direct 3x3 convolution for any input.
#[test]
fn fast_conv_equals_direct() {
    let mut rng = SplitMix64::new(0xFA57_0001);
    for _ in 0..CASES {
        let x = rand_tensor(&mut rng, 3, 9, 11);
        let seed = rng.next_u64() % 500;
        let conv = Conv2d::randn(4, 3, 3, 1, 1, seed).unwrap();
        let fast = FastConv2d::from_conv(&conv).unwrap();
        let direct = conv.forward(&x).unwrap();
        let fastv = fast.forward(&x).unwrap();
        let scale = direct.max_abs().max(1.0);
        assert!(direct.sub(&fastv).unwrap().max_abs() < 1e-3 * scale);
    }
}

/// FTA T3(6x6,4x4) equals direct 4x4 stride-2 deconvolution.
#[test]
fn fast_deconv_equals_direct() {
    let mut rng = SplitMix64::new(0xFA57_0002);
    for _ in 0..CASES {
        let x = rand_tensor(&mut rng, 2, 7, 5);
        let seed = rng.next_u64() % 500;
        let deconv = DeConv2d::randn(3, 2, 4, 2, 1, seed).unwrap();
        let fast = FastDeConv2d::from_deconv(&deconv).unwrap();
        let direct = deconv.forward(&x).unwrap();
        let fastv = fast.forward(&x).unwrap();
        assert_eq!(direct.shape(), fastv.shape());
        let scale = direct.max_abs().max(1.0);
        assert!(direct.sub(&fastv).unwrap().max_abs() < 1e-3 * scale);
    }
}

/// Pruning is monotone: higher sparsity keeps a subset of the scores,
/// and kept counts decrease.
#[test]
fn pruning_is_monotone() {
    let mut rng = SplitMix64::new(0xFA57_0003);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 500;
        for t in [winograd_f2x2_3x3(), fta_t3_6x6_4x4()] {
            let k = t.kernel();
            let w = Mat::from_vec(k, k, nvc_tensor::init::randn_vec(k * k, 1.0, seed)).unwrap();
            let e = t.transform_kernel(&w).unwrap();
            let mut prev_kept = usize::MAX;
            for rho in [0.0, 0.25, 0.5, 0.75] {
                let rep = prune(&t, &e, Sparsity::new(rho).unwrap()).unwrap();
                assert!(rep.kept <= prev_kept);
                assert_eq!(rep.kept + rep.pruned, t.mu() * t.mu());
                prev_kept = rep.kept;
            }
        }
    }
}

/// The masked kernel always has its non-zeros among the original
/// kernel's positions (pruning never invents weights).
#[test]
fn pruning_never_invents_weights() {
    let mut rng = SplitMix64::new(0xFA57_0004);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 500;
        let t = fta_t3_6x6_4x4();
        let w = Mat::from_vec(4, 4, nvc_tensor::init::randn_vec(16, 1.0, seed)).unwrap();
        let e = t.transform_kernel(&w).unwrap();
        let rep = prune(&t, &e, Sparsity::new(0.5).unwrap()).unwrap();
        for (orig, masked) in e.as_slice().iter().zip(rep.masked.as_slice()) {
            assert!(*masked == 0.0 || masked == orig);
        }
    }
}

/// A sparse fast conv at rho=0 equals the dense fast conv exactly.
#[test]
fn zero_sparsity_equals_dense() {
    let mut rng = SplitMix64::new(0xFA57_0005);
    for _ in 0..CASES {
        let x = rand_tensor(&mut rng, 2, 6, 6);
        let seed = rng.next_u64() % 200;
        let conv = Conv2d::randn(2, 2, 3, 1, 1, seed).unwrap();
        let dense = FastConv2d::from_conv(&conv).unwrap();
        let rho0 = FastConv2d::from_conv_pruned(&conv, Sparsity::dense()).unwrap();
        let a = dense.forward(&x).unwrap();
        let b = rho0.forward(&x).unwrap();
        assert!(a.sub(&b).unwrap().max_abs() == 0.0);
    }
}
