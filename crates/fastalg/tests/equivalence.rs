//! Randomized-but-deterministic equivalence tests: the fast
//! (transform-domain) operators must reproduce the direct operators for
//! arbitrary inputs and weights, and pruning must behave monotonically.
//! Case generation uses the in-tree SplitMix64 PRNG from `nvc-tensor`.

use nvc_core::ExecCtx;
use nvc_fastalg::{fta_t3_6x6_4x4, prune, winograd_f2x2_3x3, FastConv2d, FastDeConv2d, Sparsity};
use nvc_tensor::init::SplitMix64;
use nvc_tensor::mat::Mat;
use nvc_tensor::ops::{Conv2d, DeConv2d};
use nvc_tensor::{Shape, Tensor};

const CASES: usize = 32;

fn rand_tensor(rng: &mut SplitMix64, c: usize, h: usize, w: usize) -> Tensor {
    let data: Vec<f32> = (0..c * h * w).map(|_| rng.next_f32() * 4.0 - 2.0).collect();
    Tensor::from_vec(Shape::new(1, c, h, w), data).unwrap()
}

/// Winograd F(2x2,3x3) equals direct 3x3 convolution for any input.
#[test]
fn fast_conv_equals_direct() {
    let mut rng = SplitMix64::new(0xFA57_0001);
    for _ in 0..CASES {
        let x = rand_tensor(&mut rng, 3, 9, 11);
        let seed = rng.next_u64() % 500;
        let conv = Conv2d::randn(4, 3, 3, 1, 1, seed).unwrap();
        let fast = FastConv2d::from_conv(&conv).unwrap();
        let direct = conv.forward(&x).unwrap();
        let fastv = fast.forward(&x).unwrap();
        let scale = direct.max_abs().max(1.0);
        assert!(direct.sub(&fastv).unwrap().max_abs() < 1e-3 * scale);
    }
}

/// FTA T3(6x6,4x4) equals direct 4x4 stride-2 deconvolution.
#[test]
fn fast_deconv_equals_direct() {
    let mut rng = SplitMix64::new(0xFA57_0002);
    for _ in 0..CASES {
        let x = rand_tensor(&mut rng, 2, 7, 5);
        let seed = rng.next_u64() % 500;
        let deconv = DeConv2d::randn(3, 2, 4, 2, 1, seed).unwrap();
        let fast = FastDeConv2d::from_deconv(&deconv).unwrap();
        let direct = deconv.forward(&x).unwrap();
        let fastv = fast.forward(&x).unwrap();
        assert_eq!(direct.shape(), fastv.shape());
        let scale = direct.max_abs().max(1.0);
        assert!(direct.sub(&fastv).unwrap().max_abs() < 1e-3 * scale);
    }
}

/// Pruning is monotone: higher sparsity keeps a subset of the scores,
/// and kept counts decrease.
#[test]
fn pruning_is_monotone() {
    let mut rng = SplitMix64::new(0xFA57_0003);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 500;
        for t in [winograd_f2x2_3x3(), fta_t3_6x6_4x4()] {
            let k = t.kernel();
            let w = Mat::from_vec(k, k, nvc_tensor::init::randn_vec(k * k, 1.0, seed)).unwrap();
            let e = t.transform_kernel(&w).unwrap();
            let mut prev_kept = usize::MAX;
            for rho in [0.0, 0.25, 0.5, 0.75] {
                let rep = prune(&t, &e, Sparsity::new(rho).unwrap()).unwrap();
                assert!(rep.kept <= prev_kept);
                assert_eq!(rep.kept + rep.pruned, t.mu() * t.mu());
                prev_kept = rep.kept;
            }
        }
    }
}

/// The masked kernel always has its non-zeros among the original
/// kernel's positions (pruning never invents weights).
#[test]
fn pruning_never_invents_weights() {
    let mut rng = SplitMix64::new(0xFA57_0004);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 500;
        let t = fta_t3_6x6_4x4();
        let w = Mat::from_vec(4, 4, nvc_tensor::init::randn_vec(16, 1.0, seed)).unwrap();
        let e = t.transform_kernel(&w).unwrap();
        let rep = prune(&t, &e, Sparsity::new(0.5).unwrap()).unwrap();
        for (orig, masked) in e.as_slice().iter().zip(rep.masked.as_slice()) {
            assert!(*masked == 0.0 || masked == orig);
        }
    }
}

/// Worker counts the determinism sweep exercises: serial, even/odd
/// splits, more workers than work.
const THREAD_SWEEP: [usize; 4] = [1, 2, 5, 16];

/// Parallel execution of every parallelized operator is bit-identical to
/// serial execution — the partition is over output channels/tiles only
/// and each accumulation keeps a fixed summation order.
#[test]
fn parallel_operators_are_bit_exact() {
    let mut rng = SplitMix64::new(0xFA57_0006);
    for case in 0..8 {
        // Odd sizes force partial tiles and uneven chunk partitions.
        let x = rand_tensor(&mut rng, 3, 11, 13);
        let seed = rng.next_u64() % 500;
        let conv = Conv2d::randn(5, 3, 3, 1, 1, seed).unwrap();
        let fast =
            FastConv2d::from_conv_pruned(&conv, Sparsity::new(0.25 * (case % 3) as f64).unwrap())
                .unwrap();
        let deconv = DeConv2d::randn(4, 3, 4, 2, 1, seed ^ 7).unwrap();
        let fast_de = FastDeConv2d::from_deconv(&deconv).unwrap();

        let conv_ref = conv.forward(&x).unwrap();
        let fast_ref = fast.forward(&x).unwrap();
        let deconv_ref = deconv.forward(&x).unwrap();
        let fast_de_ref = fast_de.forward(&x).unwrap();
        for threads in THREAD_SWEEP {
            let ctx = ExecCtx::with_threads(threads);
            assert_eq!(
                conv.forward_ctx(&x, &ctx).unwrap().as_slice(),
                conv_ref.as_slice(),
                "Conv2d diverged at {threads} threads"
            );
            assert_eq!(
                fast.forward_ctx(&x, &ctx).unwrap().as_slice(),
                fast_ref.as_slice(),
                "FastConv2d diverged at {threads} threads"
            );
            assert_eq!(
                deconv.forward_ctx(&x, &ctx).unwrap().as_slice(),
                deconv_ref.as_slice(),
                "DeConv2d diverged at {threads} threads"
            );
            assert_eq!(
                fast_de.forward_ctx(&x, &ctx).unwrap().as_slice(),
                fast_de_ref.as_slice(),
                "FastDeConv2d diverged at {threads} threads"
            );
        }
    }
}

/// A layer large enough to split into multiple staging bands (the tiled
/// executor bounds its transform-domain buffer to ~8 MB) still matches
/// the direct operator and stays bit-exact across thread counts.
#[test]
fn multi_band_execution_matches_direct() {
    let mut rng = SplitMix64::new(0xFA57_0008);
    // 64 in-channels at 96x96 -> 192x192 output: 32x32 FTA tiles at
    // 64·64 floats each = two bands at the executor's budget.
    let x = rand_tensor(&mut rng, 64, 96, 96);
    let deconv = DeConv2d::randn(3, 64, 4, 2, 1, 901).unwrap();
    let fast = FastDeConv2d::from_deconv(&deconv).unwrap();
    let direct = deconv.forward(&x).unwrap();
    let fastv = fast.forward(&x).unwrap();
    assert_eq!(direct.shape(), fastv.shape());
    let scale = direct.max_abs().max(1.0);
    assert!(direct.sub(&fastv).unwrap().max_abs() < 1e-2 * scale);
    let par = fast.forward_ctx(&x, &ExecCtx::with_threads(4)).unwrap();
    assert_eq!(fastv.as_slice(), par.as_slice());
}

/// A context's scratch pool is reused across calls without leaking state
/// between forward passes.
#[test]
fn scratch_reuse_does_not_change_results() {
    let mut rng = SplitMix64::new(0xFA57_0007);
    let ctx = ExecCtx::with_threads(3);
    let conv = Conv2d::randn(4, 2, 3, 1, 1, 42).unwrap();
    let fast = FastConv2d::from_conv(&conv).unwrap();
    for _ in 0..4 {
        let x = rand_tensor(&mut rng, 2, 9, 7);
        let fresh = fast.forward_ctx(&x, &ExecCtx::with_threads(3)).unwrap();
        let reused = fast.forward_ctx(&x, &ctx).unwrap();
        assert_eq!(fresh.as_slice(), reused.as_slice());
    }
}

/// A sparse fast conv at rho=0 equals the dense fast conv exactly.
#[test]
fn zero_sparsity_equals_dense() {
    let mut rng = SplitMix64::new(0xFA57_0005);
    for _ in 0..CASES {
        let x = rand_tensor(&mut rng, 2, 6, 6);
        let seed = rng.next_u64() % 200;
        let conv = Conv2d::randn(2, 2, 3, 1, 1, seed).unwrap();
        let dense = FastConv2d::from_conv(&conv).unwrap();
        let rho0 = FastConv2d::from_conv_pruned(&conv, Sparsity::dense()).unwrap();
        let a = dense.forward(&x).unwrap();
        let b = rho0.forward(&x).unwrap();
        assert!(a.sub(&b).unwrap().max_abs() == 0.0);
    }
}
