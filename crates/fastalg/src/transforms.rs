use nvc_tensor::mat::Mat;
use nvc_tensor::TensorError;

/// Largest input patch side supported by any transform (`p` of T3).
pub const MAX_PATCH: usize = 5;
/// Largest transform-domain side supported (`µ` of T3).
pub const MAX_MU: usize = 8;
/// Largest output tile side supported (`m` of T3).
pub const MAX_TILE: usize = 6;

/// A complete set of fast-algorithm transform matrices for Eq. (1) of the
/// paper, together with the tiling geometry that makes a whole-layer
/// computation out of per-tile transforms.
///
/// | field | meaning |
/// |---|---|
/// | `bt` (µ×p) | input transform, `Y = Bᵀ X B` |
/// | `g` (µ×k) | kernel transform, `E = G W Gᵀ` |
/// | `at` (m×µ) | output inverse transform, `V = Aᵀ U A` |
/// | `p` | input patch side |
/// | `m` | output tile side |
/// | `in_step` | input rows consumed per tile step |
/// | `in_offset` | left/top zero padding applied before tiling |
///
/// Use [`winograd_f2x2_3x3`] or [`fta_t3_6x6_4x4`] to obtain the two
/// instances the paper (and the NVCA hardware) supports.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformPair {
    name: &'static str,
    bt: Mat,
    g: Mat,
    at: Mat,
    p: usize,
    m: usize,
    k: usize,
    mu: usize,
    in_step: usize,
    in_offset: usize,
}

impl TransformPair {
    /// Human-readable algorithm name (`"F(2x2,3x3)"` or `"T3(6x6,4x4)"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Input patch side length `p`.
    pub fn patch(&self) -> usize {
        self.p
    }

    /// Output tile side length `m`.
    pub fn tile(&self) -> usize {
        self.m
    }

    /// Kernel side length `k`.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Transform-domain side length `µ`; each tile costs `µ²`
    /// multiplications when dense.
    pub fn mu(&self) -> usize {
        self.mu
    }

    /// Dense multiplications per tile, `µ²`.
    pub fn mults_per_tile(&self) -> usize {
        self.mu * self.mu
    }

    /// Multiplications per tile a *direct* implementation would need
    /// (`m²·k²` for convolution-like operators).
    pub fn direct_mults_per_tile(&self) -> usize {
        self.m * self.m * self.k * self.k
    }

    /// Input rows/cols consumed per tile step.
    pub fn in_step(&self) -> usize {
        self.in_step
    }

    /// Zero padding applied to the top/left of the input before tiling.
    pub fn in_offset(&self) -> usize {
        self.in_offset
    }

    /// The `Bᵀ` matrix (µ×p).
    pub fn bt(&self) -> &Mat {
        &self.bt
    }

    /// The `G` matrix (µ×k).
    pub fn g(&self) -> &Mat {
        &self.g
    }

    /// The `Aᵀ` matrix (m×µ).
    pub fn at(&self) -> &Mat {
        &self.at
    }

    /// Kernel transform `E = G W Gᵀ` for a `k × k` spatial kernel.
    ///
    /// # Errors
    ///
    /// Returns an error if `w` is not `k × k`.
    pub fn transform_kernel(&self, w: &Mat) -> Result<Mat, TensorError> {
        if w.rows() != self.k || w.cols() != self.k {
            return Err(TensorError::incompatible(format!(
                "kernel must be {0}x{0}, got {1}x{2}",
                self.k,
                w.rows(),
                w.cols()
            )));
        }
        self.g.matmul(w)?.matmul(&self.g.transpose())
    }

    /// Input transform `Y = Bᵀ X B` for a `p × p` input patch.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` is not `p × p`.
    pub fn transform_input(&self, x: &Mat) -> Result<Mat, TensorError> {
        if x.rows() != self.p || x.cols() != self.p {
            return Err(TensorError::incompatible(format!(
                "input patch must be {0}x{0}, got {1}x{2}",
                self.p,
                x.rows(),
                x.cols()
            )));
        }
        let mut out = Mat::zeros(self.mu, self.mu);
        self.transform_input_slice(x.as_slice(), out.as_mut_slice());
        Ok(out)
    }

    /// Allocation-free input transform: reads a `p × p` row-major patch
    /// from `x`, writes the `µ × µ` row-major result to `out`. This is
    /// the per-tile hot kernel; all intermediates live on the stack, and
    /// the two supported geometries dispatch to const-sized bodies so the
    /// inner loops fully unroll (identical arithmetic order — the
    /// results are bit-identical to the generic body).
    ///
    /// # Panics
    ///
    /// Panics (via `debug_assert!`/indexing) if the slices are shorter
    /// than `p²` / `µ²`.
    #[inline]
    pub fn transform_input_slice(&self, x: &[f32], out: &mut [f32]) {
        debug_assert!(x.len() >= self.p * self.p && out.len() >= self.mu * self.mu);
        match (self.p, self.mu) {
            (4, 4) => self.input_fixed::<4, 4>(x, out),
            (5, 8) => self.input_fixed::<5, 8>(x, out),
            _ => self.input_fixed_generic(self.p, self.mu, x, out),
        }
    }

    /// Input-transform body with const dimensions (see
    /// [`TransformPair::transform_input_slice`]).
    #[inline]
    fn input_fixed<const P: usize, const MU: usize>(&self, x: &[f32], out: &mut [f32]) {
        let bt = self.bt.as_slice(); // µ × p
        let x = &x[..P * P];
        // tmp = Bᵀ · X  (µ × p); Bᵀ rows are sparse (±1, ±0.5).
        let mut tmp = [0.0_f32; MAX_MU * MAX_PATCH];
        for i in 0..MU {
            for k in 0..P {
                let a = bt[i * P + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..P {
                    tmp[i * P + j] += a * x[k * P + j];
                }
            }
        }
        // out = tmp · B = tmp · (Bᵀ)ᵀ: out[i][j] = Σ_k tmp[i][k]·Bᵀ[j][k].
        for i in 0..MU {
            for j in 0..MU {
                let mut acc = 0.0;
                for k in 0..P {
                    acc += tmp[i * P + k] * bt[j * P + k];
                }
                out[i * MU + j] = acc;
            }
        }
    }

    /// Fallback input-transform body with runtime dimensions — the same
    /// loops as [`TransformPair::input_fixed`], in the same order.
    fn input_fixed_generic(&self, p: usize, mu: usize, x: &[f32], out: &mut [f32]) {
        let bt = self.bt.as_slice();
        let mut tmp = [0.0_f32; MAX_MU * MAX_PATCH];
        for i in 0..mu {
            let row = &mut tmp[i * p..][..p];
            for (k, &a) in bt[i * p..][..p].iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for (t, &xv) in row.iter_mut().zip(&x[k * p..][..p]) {
                    *t += a * xv;
                }
            }
        }
        for i in 0..mu {
            let trow = &tmp[i * p..][..p];
            for j in 0..mu {
                let brow = &bt[j * p..][..p];
                let mut acc = 0.0;
                for (&t, &b) in trow.iter().zip(brow) {
                    acc += t * b;
                }
                out[i * mu + j] = acc;
            }
        }
    }

    /// Inverse transform `V = Aᵀ U A` for a `µ × µ` transform-domain tile.
    ///
    /// # Errors
    ///
    /// Returns an error if `u` is not `µ × µ`.
    pub fn inverse(&self, u: &Mat) -> Result<Mat, TensorError> {
        if u.rows() != self.mu || u.cols() != self.mu {
            return Err(TensorError::incompatible(format!(
                "transform tile must be {0}x{0}, got {1}x{2}",
                self.mu,
                u.rows(),
                u.cols()
            )));
        }
        let mut out = Mat::zeros(self.m, self.m);
        self.inverse_slice(u.as_slice(), out.as_mut_slice());
        Ok(out)
    }

    /// Allocation-free inverse transform: reads a `µ × µ` row-major tile
    /// from `u`, writes the `m × m` row-major result to `out`. The two
    /// supported geometries dispatch to const-sized bodies (identical
    /// arithmetic order, bit-identical results — see
    /// [`TransformPair::transform_input_slice`]).
    ///
    /// # Panics
    ///
    /// Panics (via `debug_assert!`/indexing) if the slices are shorter
    /// than `µ²` / `m²`.
    #[inline]
    pub fn inverse_slice(&self, u: &[f32], out: &mut [f32]) {
        debug_assert!(u.len() >= self.mu * self.mu && out.len() >= self.m * self.m);
        match (self.m, self.mu) {
            (2, 4) => self.inverse_fixed::<2, 4>(u, out),
            (6, 8) => self.inverse_fixed::<6, 8>(u, out),
            _ => self.inverse_fixed_generic(self.m, self.mu, u, out),
        }
    }

    /// Inverse-transform body with const dimensions.
    #[inline]
    fn inverse_fixed<const M: usize, const MU: usize>(&self, u: &[f32], out: &mut [f32]) {
        let at = self.at.as_slice(); // m × µ
        let u = &u[..MU * MU];
        // tmp = Aᵀ · U  (m × µ); Aᵀ rows are sparse (0, ±1).
        let mut tmp = [0.0_f32; MAX_TILE * MAX_MU];
        for i in 0..M {
            for k in 0..MU {
                let a = at[i * MU + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..MU {
                    tmp[i * MU + j] += a * u[k * MU + j];
                }
            }
        }
        // out = tmp · A = tmp · (Aᵀ)ᵀ: out[i][j] = Σ_k tmp[i][k]·Aᵀ[j][k].
        for i in 0..M {
            for j in 0..M {
                let mut acc = 0.0;
                for k in 0..MU {
                    acc += tmp[i * MU + k] * at[j * MU + k];
                }
                out[i * M + j] = acc;
            }
        }
    }

    /// Fallback inverse-transform body with runtime dimensions — the
    /// same loops as [`TransformPair::inverse_fixed`], in the same order.
    fn inverse_fixed_generic(&self, m: usize, mu: usize, u: &[f32], out: &mut [f32]) {
        let at = self.at.as_slice();
        let mut tmp = [0.0_f32; MAX_TILE * MAX_MU];
        for i in 0..m {
            let row = &mut tmp[i * mu..][..mu];
            row.fill(0.0);
            for (k, &a) in at[i * mu..][..mu].iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for (t, &uv) in row.iter_mut().zip(&u[k * mu..][..mu]) {
                    *t += a * uv;
                }
            }
        }
        for i in 0..m {
            let trow = &tmp[i * mu..][..mu];
            for j in 0..m {
                let arow = &at[j * mu..][..mu];
                let mut acc = 0.0;
                for (&t, &a) in trow.iter().zip(arow) {
                    acc += t * a;
                }
                out[i * m + j] = acc;
            }
        }
    }

    /// Whole-tile reference evaluation of Eq. (1):
    /// `V = Aᵀ [(G W Gᵀ) ⊙ (Bᵀ X B)] A`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the component transforms.
    pub fn fast_tile(&self, w: &Mat, x: &Mat) -> Result<Mat, TensorError> {
        let e = self.transform_kernel(w)?;
        let y = self.transform_input(x)?;
        self.inverse(&e.hadamard(&y)?)
    }

    /// The importance factor matrix `Q` of Eq. (6).
    ///
    /// Because `H_{c,d,i,j,q,v} = A_{i,c}·A_{j,d}·B_{q,i}·B_{v,j}`
    /// factorises, `Q_{i,j} = α_i·α_j·β_i·β_j` where `α_i` is the L2 norm
    /// of row `i` of `A` (column `i` of `Aᵀ`) and `β_i` the L2 norm of
    /// column `i` of `B` (row `i` of `Bᵀ`).
    pub fn importance(&self) -> Mat {
        let mut alpha = vec![0.0_f32; self.mu];
        let mut beta = vec![0.0_f32; self.mu];
        for i in 0..self.mu {
            let mut a2 = 0.0;
            for c in 0..self.m {
                a2 += self.at.at(c, i) * self.at.at(c, i);
            }
            alpha[i] = a2.sqrt();
            let mut b2 = 0.0;
            for q in 0..self.p {
                b2 += self.bt.at(i, q) * self.bt.at(i, q);
            }
            beta[i] = b2.sqrt();
        }
        let mut q = Mat::zeros(self.mu, self.mu);
        for i in 0..self.mu {
            for j in 0..self.mu {
                *q.at_mut(i, j) = alpha[i] * alpha[j] * beta[i] * beta[j];
            }
        }
        q
    }
}

/// Winograd fast convolution `F(2×2, 3×3)` (Eqs. (2)–(3) of the paper):
/// 4×4 input patch, 3×3 kernel, 2×2 output tile, 16 multiplications.
///
/// Tiles step 2 in the input; the canonical same-padding convolution pads
/// the input by 1 on every border, expressed here as `in_offset = 1`.
pub fn winograd_f2x2_3x3() -> TransformPair {
    let bt = Mat::from_rows(&[
        &[1.0, 0.0, -1.0, 0.0],
        &[0.0, 1.0, 1.0, 0.0],
        &[0.0, -1.0, 1.0, 0.0],
        &[0.0, 1.0, 0.0, -1.0],
    ])
    .expect("static matrix");
    let g = Mat::from_rows(&[
        &[1.0, 0.0, 0.0],
        &[0.5, 0.5, 0.5],
        &[0.5, -0.5, 0.5],
        &[0.0, 0.0, 1.0],
    ])
    .expect("static matrix");
    let at =
        Mat::from_rows(&[&[1.0, 1.0, 1.0, 0.0], &[0.0, 1.0, -1.0, -1.0]]).expect("static matrix");
    TransformPair {
        name: "F(2x2,3x3)",
        bt,
        g,
        at,
        p: 4,
        m: 2,
        k: 3,
        mu: 4,
        in_step: 2,
        in_offset: 1,
    }
}

/// FTA fast deconvolution `T3(6×6, 4×4)`, stride 2 (Eqs. (4)–(5) of the
/// paper): 5×5 input patch, 4×4 kernel, 6×6 output tile, 64
/// multiplications.
///
/// The transform decomposes the stride-2 transposed convolution into its
/// two output phases, each a Winograd `F(3, 2)` over the even/odd kernel
/// taps. Tiles step 3 in the input and 6 in the output; with the PyTorch
/// `padding = 1` convention the input is pre-padded by one zero row/column
/// (`in_offset = 1`).
pub fn fta_t3_6x6_4x4() -> TransformPair {
    let bt = Mat::from_rows(&[
        &[1.0, 0.0, -1.0, 0.0, 0.0],
        &[0.0, 1.0, 1.0, 0.0, 0.0],
        &[0.0, -1.0, 1.0, 0.0, 0.0],
        &[0.0, -1.0, 0.0, 1.0, 0.0],
        &[0.0, 1.0, 0.0, -1.0, 0.0],
        &[0.0, 0.0, 1.0, 1.0, 0.0],
        &[0.0, 0.0, -1.0, 1.0, 0.0],
        &[0.0, 0.0, -1.0, 0.0, 1.0],
    ])
    .expect("static matrix");
    let g = Mat::from_rows(&[
        &[0.0, 0.0, 0.0, 1.0],
        &[0.0, 0.5, 0.0, 0.5],
        &[0.0, -0.5, 0.0, 0.5],
        &[0.0, 1.0, 0.0, 0.0],
        &[0.0, 0.0, 1.0, 0.0],
        &[0.5, 0.0, 0.5, 0.0],
        &[-0.5, 0.0, 0.5, 0.0],
        &[1.0, 0.0, 0.0, 0.0],
    ])
    .expect("static matrix");
    let at = Mat::from_rows(&[
        &[1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0],
        &[0.0, 1.0, -1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 0.0, 0.0, 1.0, -1.0, 0.0],
        &[0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0],
        &[0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0],
    ])
    .expect("static matrix");
    TransformPair {
        name: "T3(6x6,4x4)",
        bt,
        g,
        at,
        p: 5,
        m: 6,
        k: 4,
        mu: 8,
        in_step: 3,
        in_offset: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_tensor::init::Gaussian;

    fn randmat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut g = Gaussian::new(seed);
        let mut data = vec![0.0; rows * cols];
        g.fill(&mut data, 1.0);
        Mat::from_vec(rows, cols, data).unwrap()
    }

    /// Direct 1-D slide of a 3-tap filter for the Winograd check.
    fn direct_conv1d(x: &[f32], w: &[f32]) -> Vec<f32> {
        (0..x.len() - w.len() + 1)
            .map(|o| (0..w.len()).map(|t| x[o + t] * w[t]).sum())
            .collect()
    }

    #[test]
    fn winograd_dimensions() {
        let t = winograd_f2x2_3x3();
        assert_eq!((t.patch(), t.tile(), t.kernel(), t.mu()), (4, 2, 3, 4));
        assert_eq!(t.mults_per_tile(), 16);
        assert_eq!(t.direct_mults_per_tile(), 36);
        assert_eq!(t.bt().rows(), 4);
        assert_eq!(t.bt().cols(), 4);
        assert_eq!(t.g().rows(), 4);
        assert_eq!(t.g().cols(), 3);
        assert_eq!(t.at().rows(), 2);
        assert_eq!(t.at().cols(), 4);
    }

    #[test]
    fn fta_dimensions() {
        let t = fta_t3_6x6_4x4();
        assert_eq!((t.patch(), t.tile(), t.kernel(), t.mu()), (5, 6, 4, 8));
        assert_eq!(t.mults_per_tile(), 64);
        assert_eq!(t.bt().rows(), 8);
        assert_eq!(t.bt().cols(), 5);
        assert_eq!(t.g().rows(), 8);
        assert_eq!(t.g().cols(), 4);
        assert_eq!(t.at().rows(), 6);
        assert_eq!(t.at().cols(), 8);
    }

    /// The 2-D Winograd tile must equal direct 2-D correlation of the 4×4
    /// patch with the 3×3 kernel (valid positions only).
    #[test]
    fn winograd_tile_matches_direct() {
        let t = winograd_f2x2_3x3();
        let w = randmat(3, 3, 1);
        let x = randmat(4, 4, 2);
        let v = t.fast_tile(&w, &x).unwrap();
        for oy in 0..2 {
            for ox in 0..2 {
                let mut acc = 0.0;
                for ky in 0..3 {
                    for kx in 0..3 {
                        acc += x.at(oy + ky, ox + kx) * w.at(ky, kx);
                    }
                }
                assert!(
                    (v.at(oy, ox) - acc).abs() < 1e-4,
                    "({oy},{ox}): {} vs {acc}",
                    v.at(oy, ox)
                );
            }
        }
    }

    /// 1-D sanity check of the Winograd factors: F(2,3) along one axis.
    #[test]
    fn winograd_1d_f2_3() {
        let t = winograd_f2x2_3x3();
        let x = [0.3, -1.2, 0.7, 2.0];
        let w = [0.5, -0.25, 1.0];
        // y = A^T ((G w) .* (B^T x))
        let mut gw = [0.0_f32; 4];
        let mut btx = [0.0_f32; 4];
        for i in 0..4 {
            gw[i] = (0..3).map(|j| t.g().at(i, j) * w[j]).sum();
            btx[i] = (0..4).map(|j| t.bt().at(i, j) * x[j]).sum();
        }
        let prod: Vec<f32> = gw.iter().zip(&btx).map(|(a, b)| a * b).collect();
        let y: Vec<f32> = (0..2)
            .map(|r| (0..4).map(|i| t.at().at(r, i) * prod[i]).sum())
            .collect();
        let direct = direct_conv1d(&x, &w);
        for (a, b) in y.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    /// 1-D FTA check: the 6 outputs of a tile must match the stride-2
    /// transposed convolution `out_full[j] = Σ_i x[i]·w[j−2i]` at offsets
    /// `j = 3..9` (see crate docs for the alignment derivation).
    #[test]
    fn fta_1d_t3_matches_direct_deconv() {
        let t = fta_t3_6x6_4x4();
        let x = [0.4, -0.9, 1.3, 0.2, -0.6];
        let w = [0.7, -0.3, 0.5, 1.1];
        let mut gw = [0.0_f32; 8];
        let mut btx = [0.0_f32; 8];
        for i in 0..8 {
            gw[i] = (0..4).map(|j| t.g().at(i, j) * w[j]).sum();
            btx[i] = (0..5).map(|j| t.bt().at(i, j) * x[j]).sum();
        }
        let prod: Vec<f32> = gw.iter().zip(&btx).map(|(a, b)| a * b).collect();
        let y: Vec<f32> = (0..6)
            .map(|r| (0..8).map(|i| t.at().at(r, i) * prod[i]).sum())
            .collect();
        // Direct scatter: out_full[j] = Σ_i x[i] * w[j - 2i].
        let mut out_full = vec![0.0_f32; 2 * x.len() + 2];
        for (i, &xv) in x.iter().enumerate() {
            for (j, &wv) in w.iter().enumerate() {
                out_full[2 * i + j] += xv * wv;
            }
        }
        for (o, &yo) in y.iter().enumerate() {
            assert!(
                (yo - out_full[o + 3]).abs() < 1e-5,
                "output {o}: {yo} vs {}",
                out_full[o + 3]
            );
        }
    }

    /// Importance factors are strictly positive and symmetric in (i, j).
    #[test]
    fn importance_is_positive_and_symmetric() {
        for t in [winograd_f2x2_3x3(), fta_t3_6x6_4x4()] {
            let q = t.importance();
            for i in 0..t.mu() {
                for j in 0..t.mu() {
                    assert!(q.at(i, j) > 0.0, "{} Q[{i}][{j}]", t.name());
                    assert!((q.at(i, j) - q.at(j, i)).abs() < 1e-6);
                }
            }
        }
    }

    /// For Winograd F(2x2,3x3) the analytic importance factors are known:
    /// α = (1, 1, 1, 1)·√m-pattern and β from the Bᵀ rows.
    #[test]
    fn importance_winograd_known_values() {
        let t = winograd_f2x2_3x3();
        let q = t.importance();
        // α = [1, √2, √2, 1], β = [√2, √2, √2, √2]
        let alpha = [1.0_f32, 2.0_f32.sqrt(), 2.0_f32.sqrt(), 1.0];
        let beta = [2.0_f32.sqrt(); 4];
        for i in 0..4 {
            for j in 0..4 {
                let expect = alpha[i] * alpha[j] * beta[i] * beta[j];
                assert!((q.at(i, j) - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn shape_validation() {
        let t = winograd_f2x2_3x3();
        assert!(t.transform_kernel(&Mat::zeros(4, 4)).is_err());
        assert!(t.transform_input(&Mat::zeros(5, 5)).is_err());
        assert!(t.inverse(&Mat::zeros(3, 3)).is_err());
    }
}
