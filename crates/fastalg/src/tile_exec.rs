//! Shared tiled execution engine for [`FastConv2d`](crate::FastConv2d)
//! and [`FastDeConv2d`](crate::FastDeConv2d).
//!
//! Both fast operators are the same computation with different transform
//! geometry: per tile, transform every input channel's patch
//! (`Y = Bᵀ X B`), accumulate `Σ_ci E ⊙ Y` in the transform domain, and
//! inverse-transform once per output channel (`V = Aᵀ U A`).
//!
//! The executor runs that in two phases per *band* of tile rows,
//! mirroring the SCU array's dataflow:
//!
//! 1. **Input transform** — parallel over the band's tiles. Transformed
//!    tiles land in a flat staging buffer (borrowed from the
//!    [`ExecCtx`]'s scratch pool), laid out `[tile][c_in][µ²]` so each
//!    tile is one contiguous chunk.
//! 2. **Channel reduction + inverse transform** — parallel over output
//!    channels. Each worker owns one output plane, walks the band's
//!    tiles, accumulates the sparse Hadamard products over `c_in` in
//!    ascending order into a stack accumulator, and writes the
//!    inverse-transformed tile (plus bias) into its plane.
//!
//! Banding bounds the staging buffer (≈ [`BAND_FLOATS`] elements) so
//! peak memory stays constant in the frame area — a 1080p layer streams
//! through the same few megabytes a thumbnail does — while both phases
//! keep enough tiles in flight to feed every worker.
//!
//! Accumulation order is fixed per output element regardless of the
//! worker count or band height, so serial and parallel execution are
//! **bit-identical**. The hot loops allocate nothing: patches,
//! accumulators and inverse tiles are stack arrays; the staging buffer
//! is recycled across calls.

use crate::sparse::SparseKernel;
use crate::transforms::{TransformPair, MAX_MU, MAX_PATCH, MAX_TILE};
use nvc_core::ExecCtx;
use nvc_tensor::{Shape, Tensor, TensorError};

/// One fast-operator invocation, described geometrically.
pub(crate) struct TileProblem<'a> {
    /// The transform pair (fixes patch/tile/µ geometry).
    pub transform: &'a TransformPair,
    /// Transform-domain kernels, indexed `[co * c_in + ci]`.
    pub kernels: &'a [SparseKernel],
    /// One bias per output channel.
    pub bias: &'a [f32],
    /// Input channel count.
    pub c_in: usize,
    /// Output channel count.
    pub c_out: usize,
    /// Output height (equals input height for conv, doubles for deconv).
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

/// Target staging-buffer size in `f32` elements (≈ 8 MB). The band
/// height in tile rows is chosen so `band_tiles · c_in · µ²` stays near
/// this budget.
const BAND_FLOATS: usize = 1 << 21;

/// Runs the banded two-phase tiled forward pass (see module docs).
pub(crate) fn forward_tiled(
    prob: &TileProblem<'_>,
    input: &Tensor,
    ctx: &ExecCtx,
) -> Result<Tensor, TensorError> {
    let (n, _, in_h, in_w) = input.shape().dims();
    let in_data = input.as_slice();
    let t = prob.transform;
    let (p, m, mu) = (t.patch(), t.tile(), t.mu());
    debug_assert!(p <= MAX_PATCH && m <= MAX_TILE && mu <= MAX_MU);
    let mu2 = mu * mu;
    let step = t.in_step();
    let offset = t.in_offset() as isize;
    let (oh, ow) = (prob.out_h, prob.out_w);
    let (ty_n, tx_n) = (oh.div_ceil(m), ow.div_ceil(m));
    let out_shape = Shape::new(n, prob.c_out, oh, ow);
    let mut out = Tensor::zeros(out_shape);
    let plane = oh * ow;

    let tile_floats = prob.c_in * mu2;
    let band_rows = (BAND_FLOATS / (tx_n * tile_floats).max(1)).clamp(1, ty_n);
    let mut y_band = ctx.scratch().take(band_rows * tx_n * tile_floats);
    for nn in 0..n {
        let mut ty_band = 0;
        while ty_band < ty_n {
            let band_end = (ty_band + band_rows).min(ty_n);
            let band_tiles = (band_end - ty_band) * tx_n;
            // Phase 1: input transforms, one chunk per tile in the band.
            ctx.par_chunks_mut(
                &mut y_band[..band_tiles * tile_floats],
                tile_floats,
                |band_idx, chunk| {
                    let ty = ty_band + band_idx / tx_n;
                    let tx = band_idx % tx_n;
                    let iy0 = (ty * step) as isize - offset;
                    let ix0 = (tx * step) as isize - offset;
                    // Clip the patch footprint against the input once per
                    // tile; interior rows then gather with one slice copy.
                    let py0 = (-iy0).clamp(0, p as isize) as usize;
                    let py1 = ((in_h as isize - iy0).clamp(0, p as isize)) as usize;
                    let px0 = (-ix0).clamp(0, p as isize) as usize;
                    let px1 = ((in_w as isize - ix0).clamp(0, p as isize)) as usize;
                    let mut patch = [0.0_f32; MAX_PATCH * MAX_PATCH];
                    for (ci, y_tile) in chunk.chunks_mut(mu2).enumerate() {
                        patch[..p * p].fill(0.0);
                        if px0 < px1 {
                            let plane =
                                &in_data[(nn * prob.c_in + ci) * in_h * in_w..][..in_h * in_w];
                            for py in py0..py1 {
                                let iy = (iy0 + py as isize) as usize;
                                let ix = (ix0 + px0 as isize) as usize;
                                patch[py * p + px0..py * p + px1]
                                    .copy_from_slice(&plane[iy * in_w + ix..][..px1 - px0]);
                            }
                        }
                        t.transform_input_slice(&patch[..p * p], y_tile);
                    }
                },
            );
            // Phase 2: channel reduction + inverse transform, one chunk
            // per output plane (each worker writes only the band's rows).
            let y_ref: &[f32] = &y_band;
            let batch = &mut out.as_mut_slice()[nn * prob.c_out * plane..][..prob.c_out * plane];
            ctx.par_chunks_mut(batch, plane, |co, out_plane| {
                let bias = prob.bias[co];
                let kernels = &prob.kernels[co * prob.c_in..][..prob.c_in];
                let mut u_acc = [0.0_f32; MAX_MU * MAX_MU];
                let mut v = [0.0_f32; MAX_TILE * MAX_TILE];
                for ty in ty_band..band_end {
                    let vy_max = m.min(oh - ty * m);
                    for tx in 0..tx_n {
                        let band_idx = (ty - ty_band) * tx_n + tx;
                        u_acc[..mu2].fill(0.0);
                        let y_tiles = &y_ref[band_idx * tile_floats..][..tile_floats];
                        for (ci, kernel) in kernels.iter().enumerate() {
                            kernel.hadamard_accumulate(&y_tiles[ci * mu2..][..mu2], &mut u_acc);
                        }
                        t.inverse_slice(&u_acc[..mu2], &mut v[..m * m]);
                        let vx_max = m.min(ow - tx * m);
                        for vy in 0..vy_max {
                            let out_row = &mut out_plane[(ty * m + vy) * ow + tx * m..][..vx_max];
                            for (o, &vv) in out_row.iter_mut().zip(&v[vy * m..][..vx_max]) {
                                *o = vv + bias;
                            }
                        }
                    }
                }
            });
            ty_band = band_end;
        }
    }
    ctx.scratch().put(y_band);
    Ok(out)
}
