//! Shared tiled execution engine for [`FastConv2d`](crate::FastConv2d)
//! and [`FastDeConv2d`](crate::FastDeConv2d).
//!
//! Both fast operators are the same computation with different transform
//! geometry: per tile, transform every input channel's patch
//! (`Y = Bᵀ X B`), accumulate `Σ_ci E ⊙ Y` in the transform domain, and
//! inverse-transform once per output channel (`V = Aᵀ U A`).
//!
//! The executor has two code paths selected by the kernels themselves:
//!
//! * **Dense** — every kernel keeps all `µ²` transform-domain weights.
//!   Tiles stage contiguously (`[tile][c_in][µ²]`) and the channel
//!   reduction is a contiguous `µ²`-wide multiply–accumulate per
//!   `(co, ci)` pair, exactly as fast as a padded buffer can be.
//! * **Grouped compressed** — at least one kernel is pruned. Tiles stage
//!   in groups of [`LANES`] with coefficient-major lane layout
//!   (`[group][coeff][c_in][lane]`), and each output channel reduces by
//!   walking its packed CSR stream (`CoStream`): per coefficient, the
//!   kept `(c_in, value)` pairs each perform one `LANES`-wide
//!   multiply–accumulate onto a register-resident accumulator. Work per
//!   tile is `nnz`, not `µ²`, and the fixed lane width keeps the loop
//!   vectorized — pruning at ρ = 50 % really halves the reduction
//!   compute instead of detouring through a zero-padded dense buffer.
//!
//! Both paths run two phases per *band* of tiles, mirroring the SCU
//! array's dataflow:
//!
//! 1. **Input transform** — parallel over the band's tiles (or tile
//!    groups). Transformed tiles land in a flat staging buffer borrowed
//!    from the [`ExecCtx`]'s scratch pool.
//! 2. **Channel reduction + inverse transform** — parallel over output
//!    channels. Each worker owns one output plane, walks the band,
//!    accumulates the Hadamard products over `c_in` in ascending order
//!    into a stack accumulator, and writes the inverse-transformed tile
//!    (plus bias) into its plane.
//!
//! Banding bounds the staging buffer (≈ [`BAND_FLOATS`] elements) so
//! peak memory stays constant in the frame area. Both fan-outs are
//! work-size gated ([`ExecCtx::par_chunks_mut_gated`]): a small plane
//! (decode-side latents especially) runs serially because worker
//! spawn/join overhead would dominate.
//!
//! Accumulation order is fixed per output element regardless of the
//! worker count, band height or lane grouping: contributions arrive in
//! ascending `c_in` order, each position exactly once, so serial,
//! parallel, dense-applied and compressed-applied execution are all
//! **bit-identical** (a skipped pruned position would have contributed
//! exactly `+0.0`, which cannot change an IEEE-754 accumulator seeded
//! with `+0.0`). The hot loops allocate nothing: patches, accumulators
//! and inverse tiles are stack arrays; the staging buffer is recycled
//! across calls.

use crate::sparse::{CoStream, SparseKernel};
use crate::transforms::{TransformPair, MAX_MU, MAX_PATCH, MAX_TILE};
use nvc_core::ExecCtx;
use nvc_tensor::{Shape, Tensor, TensorError};

/// Which fast transform a [`TileProblem`] runs — the label its timings
/// are reported under.
#[derive(Debug, Clone, Copy)]
pub(crate) enum KernelFamily {
    /// Winograd `F(2×2, 3×3)` convolution ([`crate::FastConv2d`]).
    Winograd,
    /// FTA `T3(6×6, 4×4)` deconvolution ([`crate::FastDeConv2d`]).
    Fta,
}

/// The per-kernel-family forward-call histogram (microseconds), global
/// so every operator instance of a family aggregates into one metric.
/// Dense and grouped-compressed runs report separately: their cost
/// models differ (`µ²` vs `nnz`), so mixing them would bury exactly the
/// comparison the sparsity work needs.
fn family_histogram(family: KernelFamily, sparse: bool) -> &'static nvc_telemetry::Histogram {
    static HISTS: std::sync::OnceLock<[nvc_telemetry::Histogram; 4]> = std::sync::OnceLock::new();
    let hists = HISTS.get_or_init(|| {
        [
            nvc_telemetry::histogram("nvc_kernel_winograd_dense_us"),
            nvc_telemetry::histogram("nvc_kernel_winograd_sparse_us"),
            nvc_telemetry::histogram("nvc_kernel_fta_dense_us"),
            nvc_telemetry::histogram("nvc_kernel_fta_sparse_us"),
        ]
    });
    &hists[usize::from(matches!(family, KernelFamily::Fta)) * 2 + usize::from(sparse)]
}

/// One fast-operator invocation, described geometrically.
pub(crate) struct TileProblem<'a> {
    /// The reporting family (conv/deconv).
    pub family: KernelFamily,
    /// The transform pair (fixes patch/tile/µ geometry).
    pub transform: &'a TransformPair,
    /// Transform-domain kernels, indexed `[co * c_in + ci]`.
    pub kernels: &'a [SparseKernel],
    /// Packed per-output-channel reduction streams; `Some` iff any
    /// kernel is pruned, selecting the grouped compressed path.
    pub streams: Option<&'a [CoStream]>,
    /// One bias per output channel.
    pub bias: &'a [f32],
    /// Input channel count.
    pub c_in: usize,
    /// Output channel count.
    pub c_out: usize,
    /// Output height (equals input height for conv, doubles for deconv).
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

/// Target staging-buffer size in `f32` elements (≈ 8 MB). The band size
/// in tiles is chosen so the staged transform-domain data stays near
/// this budget.
const BAND_FLOATS: usize = 1 << 21;

/// Tiles processed together by the grouped compressed path: every stored
/// `(value, index)` pair turns into one `LANES`-wide multiply–accumulate
/// across the group, so the sparse reduction vectorizes as well as the
/// dense contiguous loop while doing only `nnz / µ²` of its work. Wider
/// groups amortize the per-weight index/bounds overhead over more tiles;
/// 32 keeps the per-coefficient accumulator within the SIMD register
/// file and the per-group staging within L2.
const LANES: usize = 32;

/// Copies the (clipped, zero-padded) `p × p` input patch of one channel
/// at tile origin `(iy0, ix0)` into `patch`. Interior rows gather with
/// one slice copy each; out-of-bounds rows/columns stay zero.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gather_patch(
    plane: &[f32],
    in_h: usize,
    in_w: usize,
    iy0: isize,
    ix0: isize,
    p: usize,
    patch: &mut [f32],
) {
    let py0 = (-iy0).clamp(0, p as isize) as usize;
    let py1 = ((in_h as isize - iy0).clamp(0, p as isize)) as usize;
    let px0 = (-ix0).clamp(0, p as isize) as usize;
    let px1 = ((in_w as isize - ix0).clamp(0, p as isize)) as usize;
    patch[..p * p].fill(0.0);
    if px0 < px1 {
        for py in py0..py1 {
            let iy = (iy0 + py as isize) as usize;
            let ix = (ix0 + px0 as isize) as usize;
            patch[py * p + px0..py * p + px1]
                .copy_from_slice(&plane[iy * in_w + ix..][..px1 - px0]);
        }
    }
}

/// Runs the banded two-phase tiled forward pass (see module docs),
/// dispatching to the grouped compressed path when any kernel is pruned.
pub(crate) fn forward_tiled(
    prob: &TileProblem<'_>,
    input: &Tensor,
    ctx: &ExecCtx,
) -> Result<Tensor, TensorError> {
    let _span = family_histogram(prob.family, prob.streams.is_some()).time();
    match prob.streams {
        Some(streams) => forward_grouped(prob, streams, input, ctx),
        None => forward_dense(prob, input, ctx),
    }
}

/// Per-tile-channel input-transform cost in multiplies (`Bᵀ X B`), used
/// for work-size gating.
fn transform_work(t: &TransformPair) -> u64 {
    let (p, mu) = (t.patch() as u64, t.mu() as u64);
    mu * p * (p + mu)
}

/// Per-tile inverse-transform cost in multiplies (`Aᵀ U A`).
fn inverse_work(t: &TransformPair) -> u64 {
    let (m, mu) = (t.tile() as u64, t.mu() as u64);
    m * mu * (mu + m)
}

/// Dense path: contiguous per-tile staging, contiguous `µ²` reduction.
fn forward_dense(
    prob: &TileProblem<'_>,
    input: &Tensor,
    ctx: &ExecCtx,
) -> Result<Tensor, TensorError> {
    let (n, _, in_h, in_w) = input.shape().dims();
    let in_data = input.as_slice();
    let t = prob.transform;
    let (p, m, mu) = (t.patch(), t.tile(), t.mu());
    debug_assert!(p <= MAX_PATCH && m <= MAX_TILE && mu <= MAX_MU);
    let mu2 = mu * mu;
    let step = t.in_step();
    let offset = t.in_offset() as isize;
    let (oh, ow) = (prob.out_h, prob.out_w);
    let (ty_n, tx_n) = (oh.div_ceil(m), ow.div_ceil(m));
    let out_shape = Shape::new(n, prob.c_out, oh, ow);
    let mut out = Tensor::zeros(out_shape);
    let plane = oh * ow;

    let tile_floats = prob.c_in * mu2;
    let band_rows = (BAND_FLOATS / (tx_n * tile_floats).max(1)).clamp(1, ty_n);
    let mut y_band = ctx.scratch().take(band_rows * tx_n * tile_floats);
    for nn in 0..n {
        let mut ty_band = 0;
        while ty_band < ty_n {
            let band_end = (ty_band + band_rows).min(ty_n);
            let band_tiles = (band_end - ty_band) * tx_n;
            // Phase 1: input transforms, one chunk per tile in the band.
            let p1_work = (band_tiles * prob.c_in) as u64 * transform_work(t);
            ctx.par_chunks_mut_gated(
                &mut y_band[..band_tiles * tile_floats],
                tile_floats,
                p1_work,
                |band_idx, chunk| {
                    let ty = ty_band + band_idx / tx_n;
                    let tx = band_idx % tx_n;
                    let iy0 = (ty * step) as isize - offset;
                    let ix0 = (tx * step) as isize - offset;
                    let mut patch = [0.0_f32; MAX_PATCH * MAX_PATCH];
                    for (ci, y_tile) in chunk.chunks_mut(mu2).enumerate() {
                        let plane = &in_data[(nn * prob.c_in + ci) * in_h * in_w..][..in_h * in_w];
                        gather_patch(plane, in_h, in_w, iy0, ix0, p, &mut patch);
                        t.transform_input_slice(&patch[..p * p], y_tile);
                    }
                },
            );
            // Phase 2: channel reduction + inverse transform, one chunk
            // per output plane (each worker writes only the band's rows).
            let y_ref: &[f32] = &y_band;
            let batch = &mut out.as_mut_slice()[nn * prob.c_out * plane..][..prob.c_out * plane];
            let p2_work = (band_tiles * prob.c_out) as u64
                * (prob.c_in as u64 * mu2 as u64 + inverse_work(t));
            ctx.par_chunks_mut_gated(batch, plane, p2_work, |co, out_plane| {
                let bias = prob.bias[co];
                let kernels = &prob.kernels[co * prob.c_in..][..prob.c_in];
                let mut u_acc = [0.0_f32; MAX_MU * MAX_MU];
                let mut v = [0.0_f32; MAX_TILE * MAX_TILE];
                for ty in ty_band..band_end {
                    let vy_max = m.min(oh - ty * m);
                    for tx in 0..tx_n {
                        let band_idx = (ty - ty_band) * tx_n + tx;
                        u_acc[..mu2].fill(0.0);
                        let y_tiles = &y_ref[band_idx * tile_floats..][..tile_floats];
                        for (ci, kernel) in kernels.iter().enumerate() {
                            kernel.hadamard_accumulate(&y_tiles[ci * mu2..][..mu2], &mut u_acc);
                        }
                        t.inverse_slice(&u_acc[..mu2], &mut v[..m * m]);
                        let vx_max = m.min(ow - tx * m);
                        for vy in 0..vy_max {
                            let out_row = &mut out_plane[(ty * m + vy) * ow + tx * m..][..vx_max];
                            for (o, &vv) in out_row.iter_mut().zip(&v[vy * m..][..vx_max]) {
                                *o = vv + bias;
                            }
                        }
                    }
                }
            });
            ty_band = band_end;
        }
    }
    ctx.scratch().put(y_band);
    Ok(out)
}

/// Grouped compressed path: lane-major staging in groups of [`LANES`]
/// tiles, reduction as one flat sweep over each output channel's packed
/// `(value, coefficient, source)` stream.
fn forward_grouped(
    prob: &TileProblem<'_>,
    streams: &[CoStream],
    input: &Tensor,
    ctx: &ExecCtx,
) -> Result<Tensor, TensorError> {
    let (n, _, in_h, in_w) = input.shape().dims();
    let in_data = input.as_slice();
    let t = prob.transform;
    let (p, m, mu) = (t.patch(), t.tile(), t.mu());
    debug_assert!(p <= MAX_PATCH && m <= MAX_TILE && mu <= MAX_MU);
    let mu2 = mu * mu;
    let step = t.in_step();
    let offset = t.in_offset() as isize;
    let (oh, ow) = (prob.out_h, prob.out_w);
    let (ty_n, tx_n) = (oh.div_ceil(m), ow.div_ceil(m));
    let tiles_total = ty_n * tx_n;
    let groups_total = tiles_total.div_ceil(LANES);
    let out_shape = Shape::new(n, prob.c_out, oh, ow);
    let mut out = Tensor::zeros(out_shape);
    let plane = oh * ow;
    let nnz_total: u64 = prob.kernels.iter().map(|k| k.nnz() as u64).sum();

    // Compressed kernels shrink the reduction, not the staged input
    // transforms, so the band budget still divides by the full `µ²` —
    // but groups are padded to LANES tiles, so size in whole groups.
    let group_floats = LANES * prob.c_in * mu2;
    let band_groups = (BAND_FLOATS / group_floats.max(1)).clamp(1, groups_total);
    let mut y_band = ctx.scratch().take(band_groups * group_floats);
    for nn in 0..n {
        let mut g0 = 0;
        while g0 < groups_total {
            let g_end = (g0 + band_groups).min(groups_total);
            let bg = g_end - g0;
            // Phase 1: input transforms, one chunk per tile group;
            // coefficient-major lane layout [coeff][c_in][lane] inside
            // the chunk, matching the CSR walk of phase 2.
            let p1_work = (bg * LANES * prob.c_in) as u64 * transform_work(t);
            ctx.par_chunks_mut_gated(
                &mut y_band[..bg * group_floats],
                group_floats,
                p1_work,
                |bi, chunk| {
                    let tile0 = (g0 + bi) * LANES;
                    let lanes = LANES.min(tiles_total - tile0);
                    if lanes < LANES {
                        // Zero the unused lanes (and stale recycled
                        // data) of a partial trailing group; full groups
                        // overwrite every slot below.
                        chunk.fill(0.0);
                    }
                    let mut patch = [0.0_f32; MAX_PATCH * MAX_PATCH];
                    // All of one channel's lane transforms, [lane][µ²] —
                    // an L1-resident transpose source, so the lane-major
                    // scatter below writes LANES-contiguous runs instead
                    // of striding a cache line per coefficient.
                    let mut y_ci = [0.0_f32; MAX_MU * MAX_MU * LANES];
                    for ci in 0..prob.c_in {
                        let plane = &in_data[(nn * prob.c_in + ci) * in_h * in_w..][..in_h * in_w];
                        for lane in 0..lanes {
                            let tile = tile0 + lane;
                            let (ty, tx) = (tile / tx_n, tile % tx_n);
                            let iy0 = (ty * step) as isize - offset;
                            let ix0 = (tx * step) as isize - offset;
                            gather_patch(plane, in_h, in_w, iy0, ix0, p, &mut patch);
                            t.transform_input_slice(
                                &patch[..p * p],
                                &mut y_ci[lane * mu2..][..mu2],
                            );
                        }
                        for j in 0..mu2 {
                            let run = &mut chunk[(j * prob.c_in + ci) * LANES..][..lanes];
                            for (lane, slot) in run.iter_mut().enumerate() {
                                *slot = y_ci[lane * mu2 + j];
                            }
                        }
                    }
                },
            );
            // Phase 2: grouped compressed reduction + inverse transform,
            // one chunk per output plane.
            let y_ref: &[f32] = &y_band;
            let batch = &mut out.as_mut_slice()[nn * prob.c_out * plane..][..prob.c_out * plane];
            let p2_work = (bg * LANES) as u64 * nnz_total
                + (bg * LANES * prob.c_out) as u64 * inverse_work(t);
            ctx.par_chunks_mut_gated(batch, plane, p2_work, |co, out_plane| {
                let bias = prob.bias[co];
                let stream = &streams[co];
                let mut u_lanes = [0.0_f32; MAX_MU * MAX_MU * LANES];
                let mut u_tile = [0.0_f32; MAX_MU * MAX_MU];
                let mut v = [0.0_f32; MAX_TILE * MAX_TILE];
                for bi in 0..bg {
                    let tile0 = (g0 + bi) * LANES;
                    let lanes = LANES.min(tiles_total - tile0);
                    let y_group = &y_ref[bi * group_floats..][..group_floats];
                    // CSR walk: coefficient `j`'s accumulator lanes live
                    // in registers across its whole channel reduction;
                    // each kept weight is one LANES-wide broadcast
                    // multiply–accumulate from the staged row.
                    for j in 0..mu2 {
                        let row = &y_group[j * prob.c_in * LANES..][..prob.c_in * LANES];
                        let s0 = stream.starts[j] as usize;
                        let s1 = stream.starts[j + 1] as usize;
                        let mut acc = [0.0_f32; LANES];
                        for (&w, &ci) in stream.values[s0..s1].iter().zip(&stream.ci[s0..s1]) {
                            let src = &row[ci as usize * LANES..][..LANES];
                            for (a, &yv) in acc.iter_mut().zip(src) {
                                *a += w * yv;
                            }
                        }
                        u_lanes[j * LANES..][..LANES].copy_from_slice(&acc);
                    }
                    for lane in 0..lanes {
                        let tile = tile0 + lane;
                        let (ty, tx) = (tile / tx_n, tile % tx_n);
                        for (j, u) in u_tile[..mu2].iter_mut().enumerate() {
                            *u = u_lanes[j * LANES + lane];
                        }
                        t.inverse_slice(&u_tile[..mu2], &mut v[..m * m]);
                        let vy_max = m.min(oh - ty * m);
                        let vx_max = m.min(ow - tx * m);
                        for vy in 0..vy_max {
                            let out_row = &mut out_plane[(ty * m + vy) * ow + tx * m..][..vx_max];
                            for (o, &vv) in out_row.iter_mut().zip(&v[vy * m..][..vx_max]) {
                                *o = vv + bias;
                            }
                        }
                    }
                }
            });
            g0 = g_end;
        }
    }
    ctx.scratch().put(y_band);
    Ok(out)
}
