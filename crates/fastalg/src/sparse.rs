//! Transform-domain weight pruning (Eqs. (6)–(8) of the paper) and the
//! compressed kernel representation the SCU array consumes.

use crate::TransformPair;
use nvc_tensor::mat::Mat;
use nvc_tensor::TensorError;

/// Sparsity level ρ — the fraction of transform-domain weights *removed*
/// from every kernel. The paper evaluates CTVC-Net at ρ = 50 %.
///
/// # Example
///
/// ```
/// use nvc_fastalg::Sparsity;
/// let rho = Sparsity::new(0.5).unwrap();
/// assert_eq!(rho.kept_of(64), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sparsity(f64);

impl Sparsity {
    /// Creates a sparsity level.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0.0 <= rho < 1.0`.
    pub fn new(rho: f64) -> Result<Self, TensorError> {
        if !(0.0..1.0).contains(&rho) {
            return Err(TensorError::invalid(format!(
                "sparsity {rho} outside [0, 1)"
            )));
        }
        Ok(Sparsity(rho))
    }

    /// Dense (no pruning).
    pub fn dense() -> Self {
        Sparsity(0.0)
    }

    /// The ratio ρ.
    pub fn ratio(&self) -> f64 {
        self.0
    }

    /// Number of weights kept out of `total` (at least 1).
    pub fn kept_of(&self, total: usize) -> usize {
        let kept = ((total as f64) * (1.0 - self.0)).round() as usize;
        kept.clamp(1, total)
    }
}

impl Default for Sparsity {
    fn default() -> Self {
        Sparsity::dense()
    }
}

/// A pruned transform-domain kernel in compressed (value, index) form —
/// what the paper's Weight Buffer and Index Buffer hold, and what the
/// software executor consumes directly (the tiled executor's grouped
/// sparse kernel iterates exactly these pairs; see
/// `crate::tile_exec`). There is no dense execution copy: pruning a
/// kernel shrinks both its storage and its per-tile work.
///
/// Indices address the flattened `µ × µ` transform-domain tile in row-major
/// order and are strictly increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseKernel {
    mu: usize,
    values: Vec<f32>,
    indices: Vec<u16>,
}

impl SparseKernel {
    /// Compresses a (possibly masked) dense transform-domain kernel,
    /// keeping only non-zero entries.
    ///
    /// # Errors
    ///
    /// Returns an error if `e` is not square or exceeds `u16` indexing.
    pub fn from_dense(e: &Mat) -> Result<Self, TensorError> {
        if e.rows() != e.cols() {
            return Err(TensorError::incompatible("transform kernel must be square"));
        }
        if e.rows() * e.cols() > u16::MAX as usize {
            return Err(TensorError::invalid("kernel too large for u16 indices"));
        }
        let mu = e.rows();
        let mut values = Vec::new();
        let mut indices = Vec::new();
        for (i, &v) in e.as_slice().iter().enumerate() {
            if v != 0.0 {
                values.push(v);
                indices.push(i as u16);
            }
        }
        Ok(SparseKernel {
            mu,
            values,
            indices,
        })
    }

    /// Transform-domain side length µ.
    pub fn mu(&self) -> usize {
        self.mu
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Row-major indices into the `µ × µ` tile, strictly increasing.
    pub fn indices(&self) -> &[u16] {
        &self.indices
    }

    /// Reconstructs the dense `µ × µ` kernel.
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.mu, self.mu);
        for (&v, &i) in self.values.iter().zip(&self.indices) {
            m.as_mut_slice()[i as usize] = v;
        }
        m
    }

    /// Whether every transform-domain position is populated. Fully dense
    /// kernels execute through a contiguous multiply–accumulate (their
    /// indices are exactly `0..µ²`); pruned kernels go through the
    /// compressed `(value, index)` iteration.
    pub fn is_dense(&self) -> bool {
        self.values.len() == self.mu * self.mu
    }

    /// Hadamard-accumulate: `acc[idx] += value · y[idx]` for every stored
    /// non-zero, where `y` is the flattened transform-domain input tile —
    /// the SCU inner loop ("non-zero element selector" feeding the
    /// multipliers). Consumes the compressed `(value, index)` form
    /// directly: pruned positions are skipped, not multiplied by zero, so
    /// the work per tile is `nnz`, not `µ²`. Skipping cannot change the
    /// sums: a zero contribution adds exactly `+0.0`, and an IEEE-754
    /// accumulator seeded with `+0.0` is unaffected by adding `±0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `y` or `acc` is shorter than `µ²`.
    #[inline]
    pub fn hadamard_accumulate(&self, y: &[f32], acc: &mut [f32]) {
        let mu2 = self.mu * self.mu;
        assert!(y.len() >= mu2 && acc.len() >= mu2);
        if self.is_dense() {
            // Contiguous fast path for unpruned kernels.
            for ((a, &v), &yv) in acc[..mu2].iter_mut().zip(&self.values).zip(&y[..mu2]) {
                *a += v * yv;
            }
            return;
        }
        for (&v, &i) in self.values.iter().zip(&self.indices) {
            acc[i as usize] += v * y[i as usize];
        }
    }
}

/// One output channel's packed compressed-reduction stream for the
/// grouped tiled executor, in coefficient-major CSR form: for every
/// transform-domain coefficient `j`, the `(input channel, value)` pairs
/// of the kernels that kept `j`, with `ci` ascending inside each row.
///
/// Grouping per output channel (and walking coefficients outermost)
/// keeps the summation order of every output element fixed —
/// contributions still arrive in ascending `c_in`, one per kept
/// coefficient — while letting the executor hold coefficient `j`'s
/// accumulator lanes in registers across the whole channel reduction.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CoStream {
    /// CSR row starts, one per coefficient plus the end (`µ² + 1`).
    pub starts: Vec<u32>,
    /// Kept transform-domain weights, coefficient-major.
    pub values: Vec<f32>,
    /// Input-channel index per value.
    pub ci: Vec<u16>,
}

/// Packs the kernels of a `[co][ci]`-indexed kernel table into one
/// [`CoStream`] per output channel (see its docs for the ordering
/// guarantee).
pub(crate) fn pack_co_streams(kernels: &[SparseKernel], c_in: usize) -> Vec<CoStream> {
    debug_assert!(c_in > 0 && kernels.len().is_multiple_of(c_in));
    let mu2 = kernels.first().map_or(0, |k| k.mu * k.mu);
    kernels
        .chunks(c_in)
        .map(|row| {
            // Bucket each kernel's non-zeros by coefficient; the ci loop
            // is outermost, so every bucket ends up ci-ascending.
            let mut buckets: Vec<Vec<(u16, f32)>> = vec![Vec::new(); mu2];
            for (ci, k) in row.iter().enumerate() {
                for (&v, &i) in k.values.iter().zip(&k.indices) {
                    buckets[i as usize].push((ci as u16, v));
                }
            }
            let nnz: usize = buckets.iter().map(Vec::len).sum();
            let mut stream = CoStream {
                starts: Vec::with_capacity(mu2 + 1),
                values: Vec::with_capacity(nnz),
                ci: Vec::with_capacity(nnz),
            };
            stream.starts.push(0);
            for bucket in &buckets {
                for &(ci, v) in bucket {
                    stream.ci.push(ci);
                    stream.values.push(v);
                }
                stream.starts.push(stream.values.len() as u32);
            }
            stream
        })
        .collect()
}

/// Outcome of pruning one kernel: the masked dense kernel plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneReport {
    /// Masked transform-domain kernel (`M ⊙ E`).
    pub masked: Mat,
    /// Number of non-zeros kept.
    pub kept: usize,
    /// Number of positions zeroed by the mask (regardless of whether the
    /// original value was already zero).
    pub pruned: usize,
    /// The effective threshold ζ: smallest kept score.
    pub threshold: f64,
}

/// Prunes one transform-domain kernel `E = G W Gᵀ` per Eqs. (6)–(8):
/// scores every position by `Q²ᵢⱼ · E²ᵢⱼ`, keeps the top
/// `(1−ρ)·µ²` positions and zeroes the rest.
///
/// The per-kernel top-k rule (rather than a global threshold) realises the
/// *fine-grained structured sparsity* of §IV-B-1: every kernel has exactly
/// the same non-zero count, so the `64ρ` multipliers of each SCU are always
/// fully utilised and the workload stays balanced.
///
/// # Errors
///
/// Returns an error if `e` and the transform's µ disagree.
pub fn prune(
    transform: &TransformPair,
    e: &Mat,
    rho: Sparsity,
) -> Result<PruneReport, TensorError> {
    let mu = transform.mu();
    if e.rows() != mu || e.cols() != mu {
        return Err(TensorError::incompatible(format!(
            "kernel is {}x{}, transform µ is {mu}",
            e.rows(),
            e.cols()
        )));
    }
    let q = transform.importance();
    let total = mu * mu;
    let kept = rho.kept_of(total);
    let mut scored: Vec<(f64, usize)> = (0..total)
        .map(|idx| {
            let qv = q.as_slice()[idx] as f64;
            let ev = e.as_slice()[idx] as f64;
            (qv * qv * ev * ev, idx)
        })
        .collect();
    // Sort descending by score; ties broken by index for determinism.
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    let mut masked = Mat::zeros(mu, mu);
    let mut threshold = f64::INFINITY;
    for &(score, idx) in scored.iter().take(kept) {
        masked.as_mut_slice()[idx] = e.as_slice()[idx];
        threshold = threshold.min(score);
    }
    Ok(PruneReport {
        masked,
        kept,
        pruned: total - kept,
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fta_t3_6x6_4x4, winograd_f2x2_3x3};
    use nvc_tensor::init::Gaussian;

    fn randmat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut g = Gaussian::new(seed);
        let mut data = vec![0.0; rows * cols];
        g.fill(&mut data, 1.0);
        Mat::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn sparsity_validation_and_counts() {
        assert!(Sparsity::new(1.0).is_err());
        assert!(Sparsity::new(-0.1).is_err());
        let s = Sparsity::new(0.5).unwrap();
        assert_eq!(s.kept_of(16), 8);
        assert_eq!(s.kept_of(64), 32);
        assert_eq!(Sparsity::new(0.75).unwrap().kept_of(16), 4);
        // Never prunes everything.
        assert_eq!(Sparsity::new(0.99).unwrap().kept_of(4), 1);
        assert_eq!(Sparsity::default().kept_of(64), 64);
    }

    #[test]
    fn prune_keeps_exact_count_per_kernel() {
        let t = winograd_f2x2_3x3();
        for seed in 0..8 {
            let w = randmat(3, 3, seed);
            let e = t.transform_kernel(&w).unwrap();
            let rep = prune(&t, &e, Sparsity::new(0.5).unwrap()).unwrap();
            assert_eq!(rep.kept, 8);
            let nnz = rep.masked.as_slice().iter().filter(|&&v| v != 0.0).count();
            assert!(nnz <= 8, "structural zeros may reduce nnz below kept");
            assert_eq!(rep.pruned, 8);
        }
    }

    #[test]
    fn prune_respects_importance_weighting() {
        // Build E with a huge value at a low-importance position and a
        // modest value at high-importance; with magnitude-only pruning the
        // huge value always wins, with Q-weighting the comparison is
        // rescaled. We verify the kept set is chosen by Q²E², not E².
        let t = winograd_f2x2_3x3();
        let q = t.importance();
        let mut e = Mat::zeros(4, 4);
        // Find min- and max-importance positions.
        let (mut min_i, mut max_i) = (0, 0);
        for (i, &v) in q.as_slice().iter().enumerate() {
            if v < q.as_slice()[min_i] {
                min_i = i;
            }
            if v > q.as_slice()[max_i] {
                max_i = i;
            }
        }
        let ratio = q.as_slice()[max_i] / q.as_slice()[min_i];
        assert!(
            ratio > 1.0 + 1e-3,
            "transform must have non-uniform importance"
        );
        // Value at min-importance slightly larger in magnitude, but not
        // enough to overcome the importance gap.
        e.as_mut_slice()[min_i] = 1.1;
        e.as_mut_slice()[max_i] = 1.0;
        let rep = prune(&t, &e, Sparsity::new(15.0 / 16.0).unwrap()).unwrap();
        assert_eq!(rep.kept, 1);
        assert_eq!(rep.masked.as_slice()[max_i], 1.0, "importance must win");
        assert_eq!(rep.masked.as_slice()[min_i], 0.0);
    }

    #[test]
    fn sparse_kernel_roundtrip() {
        let t = fta_t3_6x6_4x4();
        let w = randmat(4, 4, 3);
        let e = t.transform_kernel(&w).unwrap();
        let rep = prune(&t, &e, Sparsity::new(0.5).unwrap()).unwrap();
        let sk = SparseKernel::from_dense(&rep.masked).unwrap();
        assert!(sk.nnz() <= 32);
        assert_eq!(sk.to_dense(), rep.masked);
        // Indices strictly increasing.
        for w in sk.indices().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn hadamard_accumulate_matches_dense() {
        let t = fta_t3_6x6_4x4();
        let w = randmat(4, 4, 4);
        let e = t.transform_kernel(&w).unwrap();
        let rep = prune(&t, &e, Sparsity::new(0.5).unwrap()).unwrap();
        let sk = SparseKernel::from_dense(&rep.masked).unwrap();
        let y = randmat(8, 8, 5);
        let mut acc = vec![0.0_f32; 64];
        sk.hadamard_accumulate(y.as_slice(), &mut acc);
        let dense = rep.masked.hadamard(&y).unwrap();
        for (a, b) in acc.iter().zip(dense.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn packed_streams_cover_every_kernel_in_ci_order() {
        let t = fta_t3_6x6_4x4();
        let kernels: Vec<SparseKernel> = (0..6)
            .map(|seed| {
                let w = randmat(4, 4, seed);
                let e = t.transform_kernel(&w).unwrap();
                let rep = prune(&t, &e, Sparsity::new(0.5).unwrap()).unwrap();
                SparseKernel::from_dense(&rep.masked).unwrap()
            })
            .collect();
        let c_in = 3;
        let streams = pack_co_streams(&kernels, c_in);
        assert_eq!(streams.len(), 2);
        for (co, stream) in streams.iter().enumerate() {
            assert_eq!(stream.starts.len(), 65);
            assert_eq!(
                stream.values.len(),
                kernels[co * c_in..][..c_in]
                    .iter()
                    .map(SparseKernel::nnz)
                    .sum::<usize>()
            );
            // Every CSR row is ci-ascending (the fixed summation order),
            // and each (ci, coeff) entry matches the source kernel.
            for j in 0..64 {
                let (s0, s1) = (stream.starts[j] as usize, stream.starts[j + 1] as usize);
                let row_ci = &stream.ci[s0..s1];
                assert!(row_ci.windows(2).all(|w| w[0] < w[1]), "co={co} j={j}");
                for (&ci, &v) in row_ci.iter().zip(&stream.values[s0..s1]) {
                    let k = &kernels[co * c_in + ci as usize];
                    let dense = k.to_dense();
                    assert_eq!(dense.as_slice()[j], v, "co={co} ci={ci} j={j}");
                }
            }
        }
    }

    #[test]
    fn dense_kernels_report_density() {
        let t = winograd_f2x2_3x3();
        let mut e = Mat::zeros(4, 4);
        for (i, v) in e.as_mut_slice().iter_mut().enumerate() {
            *v = (i + 1) as f32;
        }
        let dense = SparseKernel::from_dense(&e).unwrap();
        assert!(dense.is_dense());
        let rep = prune(&t, &e, Sparsity::new(0.5).unwrap()).unwrap();
        let sparse = SparseKernel::from_dense(&rep.masked).unwrap();
        assert!(!sparse.is_dense());
    }

    #[test]
    fn zero_sparsity_is_identity_mask() {
        let t = winograd_f2x2_3x3();
        let w = randmat(3, 3, 9);
        let e = t.transform_kernel(&w).unwrap();
        let rep = prune(&t, &e, Sparsity::dense()).unwrap();
        assert_eq!(rep.masked, e);
        assert_eq!(rep.pruned, 0);
    }
}
