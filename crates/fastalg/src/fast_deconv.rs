use crate::sparse::{pack_co_streams, prune, CoStream, SparseKernel, Sparsity};
use crate::tile_exec::{forward_tiled, KernelFamily, TileProblem};
use crate::transforms::{fta_t3_6x6_4x4, TransformPair};
use nvc_core::ExecCtx;
use nvc_tensor::mat::Mat;
use nvc_tensor::ops::DeConv2d;
use nvc_tensor::{Tensor, TensorError};

/// A 4×4 stride-2 transposed convolution executed through the FTA
/// `T3(6×6, 4×4)` transform pipeline, optionally pruned — the software
/// model of what the SFTC computes for DeConvs.
///
/// Tiling geometry (derived in [`crate::transforms`]): the input is
/// logically pre-padded with one zero row/column; each tile reads a 5×5
/// input patch stepping by 3, and produces a 6×6 output tile stepping by
/// 6. A transposed convolution with `k = 4, s = 2, p = 1` doubles the
/// spatial resolution, so an `h × w` input yields `2h × 2w` output.
///
/// # Example
///
/// ```
/// use nvc_fastalg::FastDeConv2d;
/// use nvc_tensor::{ops::DeConv2d, Shape, Tensor};
/// # fn main() -> Result<(), nvc_tensor::TensorError> {
/// let deconv = DeConv2d::randn(4, 8, 4, 2, 1, 21)?;
/// let fast = FastDeConv2d::from_deconv(&deconv)?;
/// let y = fast.forward(&Tensor::zeros(Shape::new(1, 8, 6, 9)))?;
/// assert_eq!(y.shape().dims(), (1, 4, 12, 18));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FastDeConv2d {
    transform: TransformPair,
    /// Compressed transform-domain kernels, indexed `[co * c_in + ci]`.
    kernels: Vec<SparseKernel>,
    /// Packed per-output-channel reduction streams (`Some` iff any
    /// kernel is pruned; selects the grouped compressed executor).
    streams: Option<Vec<CoStream>>,
    bias: Vec<f32>,
    c_out: usize,
    c_in: usize,
    sparsity: Sparsity,
}

impl FastDeConv2d {
    /// Builds the dense fast deconvolution from a direct [`DeConv2d`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] unless the deconvolution is
    /// 4×4, stride 2, padding 1 (the `T3(6×6, 4×4)` configuration).
    pub fn from_deconv(deconv: &DeConv2d) -> Result<Self, TensorError> {
        Self::from_deconv_pruned(deconv, Sparsity::dense())
    }

    /// Builds the fast deconvolution with transform-domain pruning at
    /// sparsity `rho`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FastDeConv2d::from_deconv`].
    pub fn from_deconv_pruned(deconv: &DeConv2d, rho: Sparsity) -> Result<Self, TensorError> {
        if deconv.kernel() != 4 || deconv.stride() != 2 || deconv.padding() != 1 {
            return Err(TensorError::incompatible(format!(
                "T3(6x6,4x4) requires k=4 s=2 p=1 deconvolutions, got k={} s={} p={}",
                deconv.kernel(),
                deconv.stride(),
                deconv.padding()
            )));
        }
        let transform = fta_t3_6x6_4x4();
        let mut kernels = Vec::with_capacity(deconv.c_out() * deconv.c_in());
        for co in 0..deconv.c_out() {
            for ci in 0..deconv.c_in() {
                let w = Mat::from_vec(4, 4, deconv.kernel_slice(ci, co).to_vec())?;
                let e = transform.transform_kernel(&w)?;
                let masked = if rho.ratio() > 0.0 {
                    prune(&transform, &e, rho)?.masked
                } else {
                    e
                };
                kernels.push(SparseKernel::from_dense(&masked)?);
            }
        }
        let streams = kernels
            .iter()
            .any(|k| !k.is_dense())
            .then(|| pack_co_streams(&kernels, deconv.c_in()));
        Ok(FastDeConv2d {
            transform,
            kernels,
            streams,
            bias: deconv.bias().to_vec(),
            c_out: deconv.c_out(),
            c_in: deconv.c_in(),
            sparsity: rho,
        })
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Sparsity the kernels were pruned to.
    pub fn sparsity(&self) -> Sparsity {
        self.sparsity
    }

    /// The underlying transform pair.
    pub fn transform(&self) -> &TransformPair {
        &self.transform
    }

    /// The compressed kernel for `(co, ci)`.
    ///
    /// # Panics
    ///
    /// Panics if `co` or `ci` is out of range.
    pub fn kernel(&self, co: usize, ci: usize) -> &SparseKernel {
        assert!(co < self.c_out && ci < self.c_in);
        &self.kernels[co * self.c_in + ci]
    }

    /// Total non-zero transform-domain weights across all kernels.
    pub fn nnz_total(&self) -> usize {
        self.kernels.iter().map(|k| k.nnz()).sum()
    }

    /// Number of tiles needed to cover an `h × w` input (output is
    /// `2h × 2w`).
    pub fn tile_count(&self, h: usize, w: usize) -> (usize, usize) {
        let m = self.transform.tile();
        ((2 * h).div_ceil(m), (2 * w).div_ceil(m))
    }

    /// Hadamard multiplications to process an `h × w` input with the
    /// current (possibly pruned) kernels.
    pub fn hadamard_mults(&self, h: usize, w: usize) -> u64 {
        let (ty, tx) = self.tile_count(h, w);
        (ty * tx) as u64 * self.nnz_total() as u64
    }

    /// Runs the fast deconvolution single-threaded.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if the input channel count
    /// differs from `c_in`.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(input, &ExecCtx::serial())
    }

    /// Runs the fast deconvolution through the two-phase tiled executor
    /// (tiles, then output planes; allocation-free hot loops; pruned
    /// kernels consumed in compressed `(value, index)` form — see
    /// [`FastConv2d::forward_ctx`](crate::FastConv2d::forward_ctx)).
    /// Results are bit-identical for every worker count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FastDeConv2d::forward`].
    pub fn forward_ctx(&self, input: &Tensor, ctx: &ExecCtx) -> Result<Tensor, TensorError> {
        let (_, c, h, w) = input.shape().dims();
        if c != self.c_in {
            return Err(TensorError::incompatible(format!(
                "fast deconv expects {} input channels, got {c}",
                self.c_in
            )));
        }
        forward_tiled(
            &TileProblem {
                family: KernelFamily::Fta,
                transform: &self.transform,
                kernels: &self.kernels,
                streams: self.streams.as_deref(),
                bias: &self.bias,
                c_in: self.c_in,
                c_out: self.c_out,
                out_h: 2 * h,
                out_w: 2 * w,
            },
            input,
            ctx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_tensor::Shape;

    fn ramp(c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_fn(Shape::new(1, c, h, w), |_, ci, y, x| {
            ((ci + 1) as f32) * 0.07 * (((y * 3 + x * 5) % 11) as f32 - 5.0)
        })
    }

    #[test]
    fn dense_fast_deconv_matches_direct() {
        let deconv = DeConv2d::randn(3, 2, 4, 2, 1, 31).unwrap();
        let fast = FastDeConv2d::from_deconv(&deconv).unwrap();
        let x = ramp(2, 9, 6);
        let direct = deconv.forward(&x).unwrap();
        let fastv = fast.forward(&x).unwrap();
        assert_eq!(direct.shape(), fastv.shape());
        let diff = direct.sub(&fastv).unwrap().max_abs();
        assert!(diff < 1e-4, "max diff {diff}");
    }

    #[test]
    fn sizes_not_multiple_of_three_are_cropped() {
        let deconv = DeConv2d::randn(2, 2, 4, 2, 1, 32).unwrap();
        let fast = FastDeConv2d::from_deconv(&deconv).unwrap();
        for (h, w) in [(4, 5), (7, 8), (3, 10)] {
            let x = ramp(2, h, w);
            let direct = deconv.forward(&x).unwrap();
            let fastv = fast.forward(&x).unwrap();
            assert_eq!(fastv.shape().dims(), (1, 2, 2 * h, 2 * w));
            let diff = direct.sub(&fastv).unwrap().max_abs();
            assert!(diff < 1e-4, "{h}x{w}: max diff {diff}");
        }
    }

    #[test]
    fn bias_is_preserved() {
        let mut weight = vec![0.0; 2 * 16];
        weight.iter_mut().for_each(|v| *v = 0.0);
        let deconv = DeConv2d::new(weight, vec![0.75, -2.0], 2, 1, 4, 2, 1).unwrap();
        let fast = FastDeConv2d::from_deconv(&deconv).unwrap();
        let y = fast
            .forward(&Tensor::zeros(Shape::new(1, 1, 3, 3)))
            .unwrap();
        assert!((y.at(0, 0, 3, 3) - 0.75).abs() < 1e-6);
        assert!((y.at(0, 1, 0, 0) + 2.0).abs() < 1e-6);
    }

    #[test]
    fn pruned_deconv_keeps_half_the_weights() {
        // Smooth, bilinear-like upsampling kernels (outer([1,3,3,1]/4))
        // concentrate transform energy, like a real codec's synthesis
        // filters do.
        let tap = [1.0_f32, 3.0, 3.0, 1.0];
        let deconv = DeConv2d::from_fn(4, 4, 4, 2, 1, |ci, co, kh, kw| {
            let scale = if co == ci { 1.0 } else { 0.05 };
            scale * tap[kh] * tap[kw] / 16.0
        })
        .unwrap();
        let dense = FastDeConv2d::from_deconv(&deconv).unwrap();
        let sparse =
            FastDeConv2d::from_deconv_pruned(&deconv, Sparsity::new(0.5).unwrap()).unwrap();
        assert_eq!(dense.nnz_total(), 16 * 64);
        assert!(sparse.nnz_total() <= 16 * 32);
        // Smooth, natural-feature-like input (see fast_conv tests).
        let x = Tensor::from_fn(Shape::new(1, 4, 6, 6), |_, c, y, xx| {
            1.0 + 0.5 * ((y as f32 * 0.5 + xx as f32 * 0.35 + c as f32).sin())
        });
        let yd = dense.forward(&x).unwrap();
        let ys = sparse.forward(&x).unwrap();
        let rel = ys.sub(&yd).unwrap().max_abs() / yd.max_abs().max(1e-6);
        assert!(
            rel < 0.6,
            "pruning must keep smooth kernels close, rel={rel}"
        );
    }

    #[test]
    fn rejects_unsupported_configurations() {
        let k3 = DeConv2d::randn(2, 2, 3, 2, 1, 0).unwrap();
        assert!(FastDeConv2d::from_deconv(&k3).is_err());
        let s1 = DeConv2d::randn(2, 2, 4, 1, 1, 0).unwrap();
        assert!(FastDeConv2d::from_deconv(&s1).is_err());
        let deconv = DeConv2d::randn(2, 3, 4, 2, 1, 0).unwrap();
        let fast = FastDeConv2d::from_deconv(&deconv).unwrap();
        assert!(fast
            .forward(&Tensor::zeros(Shape::new(1, 2, 4, 4)))
            .is_err());
    }

    #[test]
    fn mult_counts_match_paper() {
        // One 6x6 output tile of a dense fast deconv costs 64 muls per
        // kernel — the number quoted in §IV-B of the paper.
        let deconv = DeConv2d::randn(1, 1, 4, 2, 1, 0).unwrap();
        let fast = FastDeConv2d::from_deconv(&deconv).unwrap();
        assert_eq!(fast.transform().mults_per_tile(), 64);
        assert_eq!(fast.tile_count(3, 3), (1, 1));
        assert_eq!(fast.hadamard_mults(3, 3), 64);
    }
}
