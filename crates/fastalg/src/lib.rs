//! Fast transform algorithms and transform-domain pruning — the paper's
//! "fast algorithm-based sparse strategy" (§III-B).
//!
//! Both fast convolution and fast deconvolution are expressed by the single
//! formula of Eq. (1):
//!
//! ```text
//! V = Aᵀ [ (G W Gᵀ) ⊙ (Bᵀ X B) ] A
//! ```
//!
//! with different transform matrices:
//!
//! * [`winograd_f2x2_3x3`] — the Winograd algorithm `F(2×2, 3×3)` for 3×3
//!   stride-1 convolutions: 4×4 input patches, 16 multiplications per tile
//!   instead of 36.
//! * [`fta_t3_6x6_4x4`] — the FTA fast deconvolution `T3(6×6, 4×4)` for
//!   4×4 stride-2 transposed convolutions: 5×5 input patches, 8×8 = 64
//!   multiplications per 6×6 output tile.
//!
//! On top of the transforms, [`prune`] implements the transform-domain
//! weight pruning of Eqs. (6)–(8): every transform-domain weight
//! `E = G W Gᵀ` is scored by `Q²·E²` where the importance factor `Q`
//! accounts for how strongly each transform-domain position influences the
//! final output, and the lowest-scoring positions are masked so that every
//! kernel retains exactly `⌈(1−ρ)µ²⌉` non-zeros (the fine-grained
//! *structured* sparsity the SCU array exploits).
//!
//! [`FastConv2d`] and [`FastDeConv2d`] execute whole layers through the
//! tiled transform pipeline (optionally pruned) and are verified against
//! the direct operators from [`nvc_tensor`] up to floating-point
//! associativity (see the property tests).
//!
//! # Example
//!
//! ```
//! use nvc_fastalg::FastConv2d;
//! use nvc_tensor::{ops::Conv2d, Shape, Tensor};
//!
//! # fn main() -> Result<(), nvc_tensor::TensorError> {
//! let conv = Conv2d::randn(4, 4, 3, 1, 1, 1)?;
//! let fast = FastConv2d::from_conv(&conv)?;
//! let x = Tensor::zeros(Shape::new(1, 4, 8, 8));
//! let (direct, fast_out) = (conv.forward(&x)?, fast.forward(&x)?);
//! assert_eq!(direct.shape(), fast_out.shape());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fast_conv;
mod fast_deconv;
mod sparse;
mod tile_exec;
mod transforms;

pub use fast_conv::FastConv2d;
pub use fast_deconv::FastDeConv2d;
pub use sparse::{prune, PruneReport, SparseKernel, Sparsity};
pub use transforms::{fta_t3_6x6_4x4, winograd_f2x2_3x3, TransformPair};
