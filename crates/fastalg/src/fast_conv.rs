use crate::sparse::{pack_co_streams, prune, CoStream, SparseKernel, Sparsity};
use crate::tile_exec::{forward_tiled, KernelFamily, TileProblem};
use crate::transforms::{winograd_f2x2_3x3, TransformPair};
use nvc_core::ExecCtx;
use nvc_tensor::mat::Mat;
use nvc_tensor::ops::Conv2d;
use nvc_tensor::{Tensor, TensorError};

/// A 3×3 stride-1 convolution executed through the Winograd
/// `F(2×2, 3×3)` transform pipeline, optionally with transform-domain
/// pruning — the software model of what the SFTC computes for Convs.
///
/// Construction transforms every `(c_out, c_in)` kernel once
/// (`E = G W Gᵀ`); `forward` then per input tile computes `Y = Bᵀ X B`,
/// accumulates `Σ_ci E ⊙ Y` over input channels *in the transform domain*
/// (exactly like the SCU array, which reduces channels before the single
/// inverse transform), and applies `V = Aᵀ U A`.
///
/// # Example
///
/// ```
/// use nvc_fastalg::{FastConv2d, Sparsity};
/// use nvc_tensor::{ops::Conv2d, Shape, Tensor};
/// # fn main() -> Result<(), nvc_tensor::TensorError> {
/// let conv = Conv2d::randn(8, 4, 3, 1, 1, 42)?;
/// let sparse = FastConv2d::from_conv_pruned(&conv, Sparsity::new(0.5)?)?;
/// let y = sparse.forward(&Tensor::zeros(Shape::new(1, 4, 16, 16)))?;
/// assert_eq!(y.shape().dims(), (1, 8, 16, 16));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FastConv2d {
    transform: TransformPair,
    /// Compressed transform-domain kernels, indexed `[co * c_in + ci]`.
    kernels: Vec<SparseKernel>,
    /// Packed per-output-channel reduction streams, built once at
    /// construction when any kernel is pruned (the grouped compressed
    /// executor consumes these; `None` selects the dense path).
    streams: Option<Vec<CoStream>>,
    bias: Vec<f32>,
    c_out: usize,
    c_in: usize,
    sparsity: Sparsity,
}

impl FastConv2d {
    /// Builds the dense fast convolution from a direct [`Conv2d`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] unless the convolution is
    /// 3×3, stride 1, padding 1 (the configuration `F(2×2, 3×3)` and the
    /// NVCA hardware support).
    pub fn from_conv(conv: &Conv2d) -> Result<Self, TensorError> {
        Self::from_conv_pruned(conv, Sparsity::dense())
    }

    /// Builds the fast convolution and prunes every transform-domain
    /// kernel to sparsity `rho` per Eqs. (6)–(8).
    ///
    /// # Errors
    ///
    /// Same conditions as [`FastConv2d::from_conv`].
    pub fn from_conv_pruned(conv: &Conv2d, rho: Sparsity) -> Result<Self, TensorError> {
        if conv.kernel() != 3 || conv.stride() != 1 || conv.padding() != 1 {
            return Err(TensorError::incompatible(format!(
                "F(2x2,3x3) requires k=3 s=1 p=1 convolutions, got k={} s={} p={}",
                conv.kernel(),
                conv.stride(),
                conv.padding()
            )));
        }
        let transform = winograd_f2x2_3x3();
        let mut kernels = Vec::with_capacity(conv.c_out() * conv.c_in());
        for co in 0..conv.c_out() {
            for ci in 0..conv.c_in() {
                let w = Mat::from_vec(3, 3, conv.kernel_slice(co, ci).to_vec())?;
                let e = transform.transform_kernel(&w)?;
                let masked = if rho.ratio() > 0.0 {
                    prune(&transform, &e, rho)?.masked
                } else {
                    e
                };
                kernels.push(SparseKernel::from_dense(&masked)?);
            }
        }
        let streams = kernels
            .iter()
            .any(|k| !k.is_dense())
            .then(|| pack_co_streams(&kernels, conv.c_in()));
        Ok(FastConv2d {
            transform,
            kernels,
            streams,
            bias: conv.bias().to_vec(),
            c_out: conv.c_out(),
            c_in: conv.c_in(),
            sparsity: rho,
        })
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Sparsity the kernels were pruned to.
    pub fn sparsity(&self) -> Sparsity {
        self.sparsity
    }

    /// The underlying transform pair.
    pub fn transform(&self) -> &TransformPair {
        &self.transform
    }

    /// The compressed kernel for `(co, ci)`.
    ///
    /// # Panics
    ///
    /// Panics if `co` or `ci` is out of range.
    pub fn kernel(&self, co: usize, ci: usize) -> &SparseKernel {
        assert!(co < self.c_out && ci < self.c_in);
        &self.kernels[co * self.c_in + ci]
    }

    /// Total non-zero transform-domain weights across all kernels.
    pub fn nnz_total(&self) -> usize {
        self.kernels.iter().map(|k| k.nnz()).sum()
    }

    /// Number of tiles needed to cover an `h × w` input (output is same
    /// size for this same-padding configuration).
    pub fn tile_count(&self, h: usize, w: usize) -> (usize, usize) {
        let m = self.transform.tile();
        (h.div_ceil(m), w.div_ceil(m))
    }

    /// Hadamard multiplications to process an `h × w` input with the
    /// current (possibly pruned) kernels. Compare with
    /// `c_out · c_in · 9 · h · w` for the direct algorithm.
    pub fn hadamard_mults(&self, h: usize, w: usize) -> u64 {
        let (ty, tx) = self.tile_count(h, w);
        (ty * tx) as u64 * self.nnz_total() as u64
    }

    /// Runs the fast convolution single-threaded.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Incompatible`] if the input channel count
    /// differs from `c_in`.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(input, &ExecCtx::serial())
    }

    /// Runs the fast convolution through the two-phase tiled executor
    /// (see [`crate::tile_exec`]'s module docs in the source): input
    /// transforms fan out over tiles, channel reduction + inverse
    /// transforms fan out over output planes, and the hot loops are
    /// allocation-free. Pruned kernels execute in compressed
    /// `(value, index)` form — the reduction iterates only the kept
    /// transform-domain coefficients, lane-grouped across tiles so it
    /// still vectorizes — so sparsity ρ cuts the reduction work by ρ.
    /// Results are bit-identical for every worker count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FastConv2d::forward`].
    pub fn forward_ctx(&self, input: &Tensor, ctx: &ExecCtx) -> Result<Tensor, TensorError> {
        let (_, c, h, w) = input.shape().dims();
        if c != self.c_in {
            return Err(TensorError::incompatible(format!(
                "fast conv expects {} input channels, got {c}",
                self.c_in
            )));
        }
        forward_tiled(
            &TileProblem {
                family: KernelFamily::Winograd,
                transform: &self.transform,
                kernels: &self.kernels,
                streams: self.streams.as_deref(),
                bias: &self.bias,
                c_in: self.c_in,
                c_out: self.c_out,
                out_h: h,
                out_w: w,
            },
            input,
            ctx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_tensor::Shape;

    fn ramp(c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_fn(Shape::new(1, c, h, w), |_, ci, y, x| {
            ((ci + 1) as f32) * 0.1 * ((y * w + x) as f32 % 7.0 - 3.0)
        })
    }

    #[test]
    fn dense_fast_conv_matches_direct() {
        let conv = Conv2d::randn(5, 3, 3, 1, 1, 11).unwrap();
        let fast = FastConv2d::from_conv(&conv).unwrap();
        let x = ramp(3, 10, 12);
        let direct = conv.forward(&x).unwrap();
        let fastv = fast.forward(&x).unwrap();
        let diff = direct.sub(&fastv).unwrap().max_abs();
        assert!(diff < 1e-4, "max diff {diff}");
    }

    #[test]
    fn odd_sizes_are_cropped_correctly() {
        let conv = Conv2d::randn(2, 2, 3, 1, 1, 12).unwrap();
        let fast = FastConv2d::from_conv(&conv).unwrap();
        let x = ramp(2, 7, 9); // odd dimensions force partial tiles
        let direct = conv.forward(&x).unwrap();
        let fastv = fast.forward(&x).unwrap();
        assert_eq!(fastv.shape().dims(), (1, 2, 7, 9));
        assert!(direct.sub(&fastv).unwrap().max_abs() < 1e-4);
    }

    #[test]
    fn bias_is_preserved() {
        let mut conv = Conv2d::randn(2, 2, 3, 1, 1, 13).unwrap();
        conv.bias_mut()[0] = 1.25;
        conv.bias_mut()[1] = -0.5;
        let fast = FastConv2d::from_conv(&conv).unwrap();
        let x = Tensor::zeros(Shape::new(1, 2, 4, 4));
        let y = fast.forward(&x).unwrap();
        assert!((y.at(0, 0, 2, 2) - 1.25).abs() < 1e-6);
        assert!((y.at(0, 1, 1, 3) + 0.5).abs() < 1e-6);
    }

    #[test]
    fn pruned_conv_is_close_for_smooth_kernels() {
        // Real codec kernels are smooth (low-pass-like); their transform
        // energy concentrates in a few positions, which is what makes 50 %
        // transform-domain pruning viable. Build Gaussian-blur-like
        // kernels rather than white-noise ones.
        let gauss = [1.0_f32, 2.0, 1.0];
        let conv = Conv2d::from_fn(4, 4, 3, 1, 1, |co, ci, kh, kw| {
            let scale = if co == ci { 1.0 } else { 0.1 };
            scale * gauss[kh] * gauss[kw] / 16.0
        })
        .unwrap();
        let dense = FastConv2d::from_conv(&conv).unwrap();
        let sparse = FastConv2d::from_conv_pruned(&conv, Sparsity::new(0.5).unwrap()).unwrap();
        // The separable Gaussian kernel has structural zeros in the
        // Winograd domain (9 of 16 positions non-zero per kernel).
        assert_eq!(dense.nnz_total(), 4 * 4 * 9);
        assert!(sparse.nnz_total() <= 4 * 4 * 8);
        // Smooth, natural-image-like input: low-frequency sinusoid. A
        // high-frequency input would sit in the blur kernel's null space
        // and make relative error meaningless.
        let x = Tensor::from_fn(Shape::new(1, 4, 8, 8), |_, c, y, xx| {
            1.0 + 0.5 * ((y as f32 * 0.4 + xx as f32 * 0.3 + c as f32).sin())
        });
        let yd = dense.forward(&x).unwrap();
        let ys = sparse.forward(&x).unwrap();
        let rel = ys.sub(&yd).unwrap().max_abs() / yd.max_abs().max(1e-6);
        assert!(rel > 0.0, "pruning at 50% must change something");
        assert!(
            rel < 0.5,
            "pruning must keep smooth kernels close, rel={rel}"
        );
    }

    #[test]
    fn rejects_unsupported_configurations() {
        let k5 = Conv2d::randn(2, 2, 5, 1, 2, 0).unwrap();
        assert!(FastConv2d::from_conv(&k5).is_err());
        let s2 = Conv2d::randn(2, 2, 3, 2, 1, 0).unwrap();
        assert!(FastConv2d::from_conv(&s2).is_err());
        let conv = Conv2d::randn(2, 3, 3, 1, 1, 0).unwrap();
        let fast = FastConv2d::from_conv(&conv).unwrap();
        assert!(fast
            .forward(&Tensor::zeros(Shape::new(1, 2, 4, 4)))
            .is_err());
    }

    #[test]
    fn mult_counts() {
        let conv = Conv2d::randn(2, 2, 3, 1, 1, 0).unwrap();
        let dense = FastConv2d::from_conv(&conv).unwrap();
        // 8x8 input: 4x4 tiles of 2x2 outputs; 4 kernels * 16 positions.
        assert_eq!(dense.tile_count(8, 8), (4, 4));
        assert_eq!(dense.hadamard_mults(8, 8), 16 * 4 * 16);
        let direct_mults = conv.macs(8, 8);
        assert!(dense.hadamard_mults(8, 8) < direct_mults);
    }
}
