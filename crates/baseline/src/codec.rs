//! The hybrid codec's encode/decode loop, organized as streaming
//! sessions ([`HybridEncoderSession`] / [`HybridDecoderSession`]) behind
//! the workspace-wide [`VideoCodec`](nvc_video::VideoCodec) trait; the
//! whole-sequence `encode`/`decode` methods are wrappers over them.

use crate::dct::{self, BS};
use crate::plane::Plane;
use crate::Profile;
use nvc_core::ExecCtx;
use nvc_entropy::container::{read_sections, FrameKind, Packet, Section, SectionWriter};
use nvc_entropy::{BitReader, BitWriter, CodingError, Histogram, RangeDecoder, RangeEncoder};
use nvc_tensor::{Shape, Tensor};
use nvc_video::codec::{
    DecoderSession as DecoderSessionTrait, EncoderSession as EncoderSessionTrait, StreamStats,
    VideoCodec,
};
use nvc_video::rate::{RateMode, RateOutcome, SessionRateControl};
use nvc_video::{Frame, Sequence, VideoError};
use std::error::Error;
use std::fmt;
use std::sync::OnceLock;

/// Per-frame instrumentation shared by every hybrid session in the
/// process: encode/decode wall time and coded bits per frame. Purely
/// observational — bitstreams are byte-identical with telemetry in any
/// mode.
struct CodecMetrics {
    encode_frame_us: nvc_telemetry::Histogram,
    decode_frame_us: nvc_telemetry::Histogram,
    frame_bits: nvc_telemetry::Histogram,
}

fn codec_metrics() -> &'static CodecMetrics {
    static METRICS: OnceLock<CodecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CodecMetrics {
        encode_frame_us: nvc_telemetry::histogram("nvc_hybrid_encode_frame_us"),
        decode_frame_us: nvc_telemetry::histogram("nvc_hybrid_decode_frame_us"),
        frame_bits: nvc_telemetry::histogram("nvc_hybrid_frame_bits"),
    })
}

/// Error type for codec operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum CodecError {
    /// Input sequence problems.
    Video(VideoError),
    /// Entropy-coding problems (malformed bitstream on decode).
    Coding(CodingError),
    /// Semantic mismatch (e.g. decoding with the wrong profile).
    BadInput(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Video(e) => write!(f, "video error: {e}"),
            CodecError::Coding(e) => write!(f, "coding error: {e}"),
            CodecError::BadInput(s) => write!(f, "bad input: {s}"),
        }
    }
}

impl Error for CodecError {}

impl From<VideoError> for CodecError {
    fn from(e: VideoError) -> Self {
        CodecError::Video(e)
    }
}

impl From<CodingError> for CodecError {
    fn from(e: CodingError) -> Self {
        CodecError::Coding(e)
    }
}

/// Result of encoding a sequence: the bitstream, the decoder-side
/// reconstruction and rate statistics.
#[derive(Debug, Clone)]
pub struct CodedSequence {
    /// Complete bitstream (header + per-frame payloads).
    pub bitstream: Vec<u8>,
    /// Reconstruction as produced by the in-loop decoder.
    pub decoded: Sequence,
    /// Payload bytes per frame (excluding the sequence header).
    pub bytes_per_frame: Vec<usize>,
    /// Total bitstream size in bytes.
    pub total_bytes: usize,
    /// Bits per pixel over the whole sequence.
    pub bpp: f64,
}

/// Per-frame symbol models, reset at every frame so encoder and decoder
/// stay in sync without back-channel state.
struct Models {
    skip: Histogram,
    mv: Histogram,
    dc: Histogram,
    last: Histogram,
    ac: Histogram,
    mv_offset: i32,
}

impl Models {
    fn new(search_range: i32) -> Models {
        // Half-pel units: [-2r-1, 2r+1].
        let mv_offset = 2 * search_range + 1;
        Models {
            skip: Histogram::uniform(2),
            mv: Histogram::uniform((2 * mv_offset + 1) as usize),
            dc: Histogram::uniform(1025),
            last: Histogram::uniform(65),
            ac: Histogram::uniform(513),
            mv_offset,
        }
    }
}

const DC_CLAMP: i32 = 512;
const AC_CLAMP: i32 = 256;

/// Classical hybrid block codec (see crate docs).
#[derive(Debug, Clone)]
pub struct HybridCodec {
    profile: Profile,
    exec: ExecCtx,
}

impl HybridCodec {
    /// Creates a codec with the given profile, using all available
    /// hardware parallelism for motion estimation. The parallel split is
    /// per block with unchanged per-block search, so bitstreams are
    /// bit-identical for every thread count.
    pub fn new(profile: Profile) -> Self {
        Self::with_threads(profile, 0)
    }

    /// Creates a codec with an explicit worker-thread count (`0` = all
    /// available cores).
    pub fn with_threads(profile: Profile, threads: usize) -> Self {
        HybridCodec {
            profile,
            exec: ExecCtx::with_threads(threads),
        }
    }

    /// The execution context encoder sessions fan motion search out on.
    pub fn exec(&self) -> &ExecCtx {
        &self.exec
    }

    /// The active profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    fn frame_to_planes(frame: &Frame) -> [Plane; 3] {
        let t = frame.tensor();
        let (_, _, h, w) = t.shape().dims();
        let mut planes = [Plane::zeros(w, h), Plane::zeros(w, h), Plane::zeros(w, h)];
        for (c, plane) in planes.iter_mut().enumerate() {
            for y in 0..h {
                for x in 0..w {
                    *plane.at_mut(y, x) = t.at(0, c, y, x);
                }
            }
        }
        planes
    }

    fn planes_to_frame(planes: &[Plane; 3]) -> Frame {
        let (w, h) = (planes[0].width(), planes[0].height());
        let t = Tensor::from_fn(Shape::new(1, 3, h, w), |_, c, y, x| {
            planes[c].at(y, x).clamp(0.0, 1.0)
        });
        Frame::from_tensor(t).expect("well-formed planes")
    }

    fn luma(planes: &[Plane; 3]) -> Plane {
        let (w, h) = (planes[0].width(), planes[0].height());
        let mut out = Plane::zeros(w, h);
        for y in 0..h {
            for x in 0..w {
                *out.at_mut(y, x) = 0.299 * planes[0].at(y, x)
                    + 0.587 * planes[1].at(y, x)
                    + 0.114 * planes[2].at(y, x);
            }
        }
        out
    }

    /// Opens a streaming encoder session under the given rate-control
    /// mode — a fixed QP (lower = better, 0..=51 useful) converts via
    /// `Into`, or pass a [`RateMode`] for the closed-loop /
    /// external-controller modes.
    pub fn start_encode(&self, mode: impl Into<RateMode<u8>>) -> HybridEncoderSession<'_> {
        HybridEncoderSession {
            codec: self,
            control: SessionRateControl::new(mode.into()),
            wire_qp: None,
            join_headers: false,
            dims: None,
            reference: None,
            next_index: 0,
            bytes_per_frame: Vec::new(),
            bits_per_frame: Vec::new(),
            frame_types: Vec::new(),
            rate_per_frame: Vec::new(),
            total_bytes: 0,
            last_recon: None,
        }
    }

    /// Opens a streaming decoder session; geometry and QP come from the
    /// first packet's embedded header.
    pub fn start_decode(&self) -> HybridDecoderSession<'_> {
        HybridDecoderSession {
            codec: self,
            stream: None,
            reference: None,
            next_index: 0,
            decoded: 0,
        }
    }

    /// Encodes a sequence at quality `qp` — a thin wrapper pushing every
    /// frame through a [`HybridEncoderSession`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Video`] if the sequence is malformed.
    pub fn encode(&self, seq: &Sequence, qp: u8) -> Result<CodedSequence, CodecError> {
        let coded = nvc_video::codec::encode_sequence(self, seq, qp)?;
        let bitstream = coded.to_bytes();
        Ok(CodedSequence {
            bitstream,
            decoded: coded
                .decoded
                .renamed(format!("{}-qp{qp}", self.profile.name)),
            bpp: coded.stats.bpp(seq.pixels_per_frame()),
            bytes_per_frame: coded.stats.bytes_per_frame,
            total_bytes: coded.stats.total_bytes,
        })
    }

    /// Decodes a packetized bitstream produced by
    /// [`encode`](Self::encode) with the same profile — a thin wrapper
    /// over [`HybridDecoderSession`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Coding`] on malformed input.
    pub fn decode(&self, bitstream: &[u8]) -> Result<Sequence, CodecError> {
        nvc_video::codec::decode_bitstream(self, bitstream)
    }

    // ---- intra ----

    fn encode_intra(
        &self,
        planes: &[Plane; 3],
        step: f32,
        models: &mut Models,
        rc: &mut RangeEncoder,
        recon: &mut [Plane; 3],
    ) {
        let (w, h) = (planes[0].width(), planes[0].height());
        for c in 0..3 {
            for by in (0..h).step_by(BS) {
                for bx in (0..w).step_by(BS) {
                    // DC prediction from the reconstructed left block mean.
                    let pred = intra_dc_pred(&recon[c], by, bx);
                    let block = read_block(&planes[c], by, bx);
                    let mut coef = dct::forward(&block);
                    coef[0] -= pred * BS as f32; // orthonormal DC gain is 8
                    let q = dct::quantize(&coef, step);
                    code_block(rc, models, q, true);
                    let mut dq = dct::dequantize(&q, step);
                    dq[0] += pred * BS as f32;
                    let rec = dct::inverse(&dq);
                    write_block(&mut recon[c], by, bx, &rec);
                }
            }
        }
    }

    fn decode_intra(
        &self,
        step: f32,
        models: &mut Models,
        rc: &mut RangeDecoder,
        recon: &mut [Plane; 3],
    ) {
        let (w, h) = (recon[0].width(), recon[0].height());
        for plane in recon.iter_mut() {
            for by in (0..h).step_by(BS) {
                for bx in (0..w).step_by(BS) {
                    let pred = intra_dc_pred(plane, by, bx);
                    let q = decode_block(rc, models, true);
                    let mut dq = dct::dequantize(&q, step);
                    dq[0] += pred * BS as f32;
                    let rec = dct::inverse(&dq);
                    write_block(plane, by, bx, &rec);
                }
            }
        }
    }

    // ---- inter ----

    fn encode_inter(
        &self,
        planes: &[Plane; 3],
        reference: &[Plane; 3],
        step: f32,
        models: &mut Models,
        rc: &mut RangeEncoder,
        recon: &mut [Plane; 3],
    ) {
        let (w, h) = (planes[0].width(), planes[0].height());
        let mb = self.profile.mc_block;
        let cur_luma = Self::luma(planes);
        let ref_luma = Self::luma(reference);

        // Phase 1 — motion decisions. Every block's full search and skip
        // test read only the two fixed luma planes, so they fan out over
        // the worker pool; entropy coding stays strictly sequential in
        // phase 2 and consumes the decisions in raster order, producing
        // the same bitstream for every thread count.
        let block_coords: Vec<(usize, usize)> = (0..h)
            .step_by(mb)
            .flat_map(|by| (0..w).step_by(mb).map(move |bx| (by, bx)))
            .collect();
        let mut decisions = vec![(0_i32, 0_i32, false); block_coords.len()];
        self.exec.par_chunks_mut(&mut decisions, 1, |bi, d| {
            let (by, bx) = block_coords[bi];
            let bs = mb.min(h - by).min(w - bx); // effective block (edges)
            let (mv_y, mv_x) = self.search_motion(&cur_luma, &ref_luma, by, bx, bs);
            // Skip decision: zero MV and small prediction error.
            let sad0 = cur_luma.sad(by, bx, bs, &ref_luma, by as isize * 2, bx as isize * 2);
            let skip = mv_y == 0 && mv_x == 0 && sad0 / (bs * bs) as f64 <= 0.6 * step as f64;
            d[0] = (mv_y, mv_x, skip);
        });

        // Phase 2 — sequential transform coding and reconstruction.
        for (&(by, bx), &(mv_y, mv_x, skip)) in block_coords.iter().zip(&decisions) {
            let bs = mb.min(h - by).min(w - bx);
            encode_sym(rc, &mut models.skip, u32::from(skip));
            if skip {
                for c in 0..3 {
                    copy_mc_block(&reference[c], &mut recon[c], by, bx, bs, 0, 0);
                }
                continue;
            }
            let off = models.mv_offset;
            encode_sym(rc, &mut models.mv, (mv_y + off) as u32);
            encode_sym(rc, &mut models.mv, (mv_x + off) as u32);
            for c in 0..3 {
                // Motion-compensated prediction, then transform-coded
                // residual on 8x8 sub-blocks.
                copy_mc_block(&reference[c], &mut recon[c], by, bx, bs, mv_y, mv_x);
                for sy in (0..bs).step_by(BS) {
                    for sx in (0..bs).step_by(BS) {
                        let (oy, ox) = (by + sy, bx + sx);
                        let orig = read_block(&planes[c], oy, ox);
                        let pred = read_block(&recon[c], oy, ox);
                        let mut resid = [0.0_f32; BS * BS];
                        for i in 0..BS * BS {
                            resid[i] = orig[i] - pred[i];
                        }
                        let coef = dct::forward(&resid);
                        let q = dct::quantize(&coef, step);
                        code_block(rc, models, q, false);
                        let dq = dct::dequantize(&q, step);
                        let rec = dct::inverse(&dq);
                        let mut out = [0.0_f32; BS * BS];
                        for i in 0..BS * BS {
                            out[i] = pred[i] + rec[i];
                        }
                        write_block(&mut recon[c], oy, ox, &out);
                    }
                }
            }
        }
    }

    fn decode_inter(
        &self,
        reference: &[Plane; 3],
        step: f32,
        models: &mut Models,
        rc: &mut RangeDecoder,
        recon: &mut [Plane; 3],
    ) {
        let (w, h) = (recon[0].width(), recon[0].height());
        let mb = self.profile.mc_block;
        for by in (0..h).step_by(mb) {
            for bx in (0..w).step_by(mb) {
                let bs = mb.min(h - by).min(w - bx);
                let skip = decode_sym(rc, &mut models.skip) == 1;
                if skip {
                    for c in 0..3 {
                        copy_mc_block(&reference[c], &mut recon[c], by, bx, bs, 0, 0);
                    }
                    continue;
                }
                let off = models.mv_offset;
                let mv_y = decode_sym(rc, &mut models.mv) as i32 - off;
                let mv_x = decode_sym(rc, &mut models.mv) as i32 - off;
                for c in 0..3 {
                    copy_mc_block(&reference[c], &mut recon[c], by, bx, bs, mv_y, mv_x);
                    for sy in (0..bs).step_by(BS) {
                        for sx in (0..bs).step_by(BS) {
                            let (oy, ox) = (by + sy, bx + sx);
                            let pred = read_block(&recon[c], oy, ox);
                            let q = decode_block(rc, models, false);
                            let dq = dct::dequantize(&q, step);
                            let rec = dct::inverse(&dq);
                            let mut out = [0.0_f32; BS * BS];
                            for i in 0..BS * BS {
                                out[i] = pred[i] + rec[i];
                            }
                            write_block(&mut recon[c], oy, ox, &out);
                        }
                    }
                }
            }
        }
    }

    /// Full-search (optionally half-pel-refined) motion estimation on the
    /// luma plane. Returns the MV in half-pel units.
    fn search_motion(
        &self,
        cur: &Plane,
        reference: &Plane,
        by: usize,
        bx: usize,
        bs: usize,
    ) -> (i32, i32) {
        let r = self.profile.search_range;
        let mut best = (0_i32, 0_i32);
        let mut best_cost = f64::INFINITY;
        for dy in -r..=r {
            for dx in -r..=r {
                let cost = cur.sad(
                    by,
                    bx,
                    bs,
                    reference,
                    (by as i32 + dy) as isize * 2,
                    (bx as i32 + dx) as isize * 2,
                ) + 0.01 * (dy.abs() + dx.abs()) as f64; // small MV-rate bias
                if cost < best_cost {
                    best_cost = cost;
                    best = (dy * 2, dx * 2);
                }
            }
        }
        if self.profile.half_pel {
            let (cy, cx) = best;
            for dy in -1..=1_i32 {
                for dx in -1..=1_i32 {
                    let cand = (cy + dy, cx + dx);
                    let cost = cur.sad(
                        by,
                        bx,
                        bs,
                        reference,
                        by as isize * 2 + cand.0 as isize,
                        bx as isize * 2 + cand.1 as isize,
                    );
                    if cost < best_cost {
                        best_cost = cost;
                        best = cand;
                    }
                }
            }
        }
        // Clamp into the coded alphabet.
        let off = 2 * r;
        (best.0.clamp(-off, off), best.1.clamp(-off, off))
    }
}

/// Streaming encoder session for [`HybridCodec`]: carries the previous
/// reconstruction (the prediction reference) and the rate-control state
/// across frames.
#[derive(Debug)]
pub struct HybridEncoderSession<'a> {
    codec: &'a HybridCodec,
    control: SessionRateControl<u8>,
    /// The QP the decoder currently assumes (stream header, then any
    /// in-band rate sections). `None` before the first frame.
    wire_qp: Option<u8>,
    /// Joinable-stream mode: every intra packet carries the stream
    /// header, so decoders can join at any intra boundary. See
    /// [`EncoderSession::set_join_headers`](nvc_video::EncoderSession::set_join_headers).
    join_headers: bool,
    dims: Option<(usize, usize)>,
    reference: Option<[Plane; 3]>,
    next_index: u32,
    bytes_per_frame: Vec<usize>,
    bits_per_frame: Vec<u64>,
    frame_types: Vec<FrameKind>,
    rate_per_frame: Vec<u8>,
    total_bytes: usize,
    last_recon: Option<Frame>,
}

impl HybridEncoderSession<'_> {
    /// The QP the stream is currently coded at (the most recent frame's
    /// choice); `None` before the first frame.
    pub fn current_qp(&self) -> Option<u8> {
        self.wire_qp
    }
}

impl EncoderSessionTrait for HybridEncoderSession<'_> {
    type Error = CodecError;
    type Rate = u8;

    fn push_frame(&mut self, frame: &Frame) -> Result<Packet, CodecError> {
        let _span = codec_metrics().encode_frame_us.time();
        let (w, h) = (frame.width(), frame.height());
        match self.dims {
            None => self.dims = Some((w, h)),
            Some(dims) if dims != (w, h) => {
                return Err(CodecError::BadInput(format!(
                    "frame {w}x{h} does not match stream {}x{}",
                    dims.0, dims.1
                )));
            }
            Some(_) => {}
        }
        let is_intra = self.reference.is_none();
        let qp = self
            .control
            .pick(u64::from(self.next_index), is_intra, w * h);
        let step = dct::qp_to_step(qp);
        let mut sections = SectionWriter::new();
        if self.next_index == 0 || (self.join_headers && is_intra) {
            // Stream header rides in the first packet — and, in
            // joinable-stream mode, in every intra packet, so a decoder
            // can open the stream at any intra boundary. It carries the
            // frame's own QP, so no separate rate section is needed.
            let mut header = BitWriter::new();
            header.write_bits(w as u32, 16);
            header.write_bits(h as u32, 16);
            header.write_bits(u32::from(qp), 8);
            sections.push(Section::SideInfo, header.finish());
        } else if self.wire_qp != Some(qp) {
            // In-band QP switch, signaled only on change so fixed-rate
            // streams keep the legacy byte layout. Mid-GOP is fine: the
            // reference is the previous reconstruction either way.
            sections.push(Section::Rate, vec![qp]);
        }
        self.wire_qp = Some(qp);
        let planes = HybridCodec::frame_to_planes(frame);
        let mut models = Models::new(self.codec.profile.search_range);
        let mut rc = RangeEncoder::new();
        let mut recon = [Plane::zeros(w, h), Plane::zeros(w, h), Plane::zeros(w, h)];
        if is_intra {
            self.codec
                .encode_intra(&planes, step, &mut models, &mut rc, &mut recon);
        } else {
            let reference = self.reference.as_ref().expect("P frame has a reference");
            self.codec
                .encode_inter(&planes, reference, step, &mut models, &mut rc, &mut recon);
        }
        if self.codec.profile.deblock {
            for p in &mut recon {
                deblock(p, step);
            }
        }
        let payload = rc.finish();
        self.bytes_per_frame.push(payload.len());
        let (kind, section) = if is_intra {
            (FrameKind::Intra, Section::Intra)
        } else {
            (FrameKind::Predicted, Section::Motion)
        };
        sections.push(section, payload);
        self.last_recon = Some(HybridCodec::planes_to_frame(&recon));
        self.reference = Some(recon);
        let packet = Packet::new(self.next_index, kind, sections.finish());
        self.total_bytes += packet.encoded_len();
        let bits = packet.encoded_len() as u64 * 8;
        codec_metrics().frame_bits.record(bits);
        self.bits_per_frame.push(bits);
        self.frame_types.push(kind);
        self.rate_per_frame.push(qp);
        self.control.observe(RateOutcome {
            frame_index: u64::from(self.next_index),
            intra: is_intra,
            pixels: w * h,
            bits,
            wire_rate: qp,
        });
        self.next_index += 1;
        Ok(packet)
    }

    fn last_reconstruction(&self) -> Option<&Frame> {
        self.last_recon.as_ref()
    }

    fn frames_pushed(&self) -> usize {
        self.next_index as usize
    }

    fn restart_gop(&mut self) -> bool {
        self.reference = None;
        true
    }

    fn set_join_headers(&mut self, enabled: bool) -> bool {
        self.join_headers = enabled;
        true
    }

    fn last_rate(&self) -> Option<u8> {
        self.wire_qp
    }

    fn set_rate_mode(&mut self, mode: RateMode<u8>) {
        self.control.retarget(mode);
    }

    fn finish(self) -> Result<StreamStats, CodecError> {
        Ok(StreamStats {
            frames: self.next_index as usize,
            bytes_per_frame: self.bytes_per_frame,
            bits_per_frame: self.bits_per_frame,
            frame_types: self.frame_types,
            rate_per_frame: self.rate_per_frame,
            total_bytes: self.total_bytes,
        })
    }
}

/// Streaming decoder session for [`HybridCodec`].
#[derive(Debug)]
pub struct HybridDecoderSession<'a> {
    codec: &'a HybridCodec,
    /// `(w, h, qp)` — geometry from the stream header, QP seeded by the
    /// header and then following any in-band rate sections.
    stream: Option<(usize, usize, u8)>,
    reference: Option<[Plane; 3]>,
    next_index: u32,
    decoded: usize,
}

impl HybridDecoderSession<'_> {
    /// Parses a `SideInfo` stream-header section.
    fn parse_header(payload: &[u8]) -> Result<(usize, usize, u8), CodecError> {
        let mut hr = BitReader::new(payload);
        let w = hr.read_bits(16)? as usize;
        let h = hr.read_bits(16)? as usize;
        let qp = hr.read_bits(8)? as u8;
        if w == 0 || h == 0 {
            return Err(CodecError::BadInput(format!("bad stream geometry {w}x{h}")));
        }
        Ok((w, h, qp))
    }
}

impl DecoderSessionTrait for HybridDecoderSession<'_> {
    type Error = CodecError;

    fn push_packet(&mut self, bytes: &[u8]) -> Result<Frame, CodecError> {
        let _span = codec_metrics().decode_frame_us.time();
        let (packet, consumed) = Packet::from_bytes(bytes)?;
        if consumed != bytes.len() {
            return Err(CodecError::BadInput(format!(
                "{} trailing bytes after packet",
                bytes.len() - consumed
            )));
        }
        if self.stream.is_some() && packet.frame_index != self.next_index {
            return Err(CodecError::BadInput(format!(
                "expected frame {}, got packet for frame {}",
                self.next_index, packet.frame_index
            )));
        }
        let sections = read_sections(&packet.payload)?;
        let mut rest: &[(Section, Vec<u8>)] = &sections;
        if self.stream.is_none() {
            // Stream join: the first pushed packet — frame 0 of a plain
            // stream or, for joinable streams, any header-carrying
            // intra — must lead with the stream header, which also
            // seeds the frame-index sequence.
            let (first, tail) = rest
                .split_first()
                .ok_or_else(|| CodecError::BadInput("first packet has no sections".into()))?;
            if first.0 != Section::SideInfo {
                return Err(CodecError::BadInput("missing stream header".into()));
            }
            self.stream = Some(Self::parse_header(&first.1)?);
            self.next_index = packet.frame_index;
            rest = tail;
        } else if packet.kind == FrameKind::Intra
            && matches!(rest.first(), Some((Section::SideInfo, _)))
        {
            // Joinable streams re-send the header on every intra; it
            // must agree with the open stream and carries the frame's
            // QP (no separate rate section).
            let (first, tail) = rest.split_first().expect("checked non-empty");
            let (w, h, qp) = Self::parse_header(&first.1)?;
            let open = self.stream.expect("stream open");
            if (w, h) != (open.0, open.1) {
                return Err(CodecError::BadInput(format!(
                    "mid-stream header {w}x{h} does not match open stream {}x{}",
                    open.0, open.1
                )));
            }
            self.stream = Some((w, h, qp));
            rest = tail;
        } else {
            // An in-band QP switch may lead the packet's sections.
            let (switch, tail) =
                nvc_video::codec::take_rate_section(rest).map_err(CodecError::BadInput)?;
            if let Some(qp) = switch {
                let stream = self.stream.as_mut().expect("stream open");
                stream.2 =
                    <u8 as nvc_video::RateParam>::from_wire(qp).map_err(CodecError::BadInput)?;
                rest = tail;
            }
        }
        let (w, h, qp) = self.stream.expect("stream open");
        let step = dct::qp_to_step(qp);
        let payload = match (packet.kind, rest) {
            (FrameKind::Intra, [(Section::Intra, payload)]) => payload,
            (FrameKind::Predicted, [(Section::Motion, payload)]) => payload,
            _ => {
                return Err(CodecError::BadInput(
                    "packet sections do not match its frame kind".into(),
                ))
            }
        };
        let mut models = Models::new(self.codec.profile.search_range);
        let mut rc = RangeDecoder::new(payload);
        let mut recon = [Plane::zeros(w, h), Plane::zeros(w, h), Plane::zeros(w, h)];
        match packet.kind {
            FrameKind::Intra => {
                self.codec
                    .decode_intra(step, &mut models, &mut rc, &mut recon);
            }
            FrameKind::Predicted => {
                let reference = self
                    .reference
                    .as_ref()
                    .ok_or_else(|| CodecError::BadInput("P frame without reference".into()))?;
                self.codec
                    .decode_inter(reference, step, &mut models, &mut rc, &mut recon);
            }
        }
        if self.codec.profile.deblock {
            for p in &mut recon {
                deblock(p, step);
            }
        }
        let frame = HybridCodec::planes_to_frame(&recon);
        self.reference = Some(recon);
        self.next_index += 1;
        self.decoded += 1;
        Ok(frame)
    }

    fn frames_decoded(&self) -> usize {
        self.decoded
    }

    fn last_rate(&self) -> Option<u8> {
        self.stream.map(|(_, _, qp)| qp)
    }
}

impl VideoCodec for HybridCodec {
    type Error = CodecError;
    type Rate = u8;
    type Encoder<'a> = HybridEncoderSession<'a>;
    type Decoder<'a> = HybridDecoderSession<'a>;

    fn codec_name(&self) -> &str {
        self.profile.name
    }

    fn start_encode(&self, mode: RateMode<u8>) -> Result<HybridEncoderSession<'_>, CodecError> {
        Ok(HybridCodec::start_encode(self, mode))
    }

    fn start_decode(&self) -> HybridDecoderSession<'_> {
        HybridCodec::start_decode(self)
    }
}

// ---- shared block helpers ----

fn read_block(p: &Plane, by: usize, bx: usize) -> [f32; BS * BS] {
    let mut out = [0.0_f32; BS * BS];
    for y in 0..BS {
        for x in 0..BS {
            out[y * BS + x] = p.at_clamped((by + y) as isize, (bx + x) as isize);
        }
    }
    out
}

fn write_block(p: &mut Plane, by: usize, bx: usize, block: &[f32; BS * BS]) {
    let (w, h) = (p.width(), p.height());
    for y in 0..BS {
        for x in 0..BS {
            if by + y < h && bx + x < w {
                *p.at_mut(by + y, bx + x) = block[y * BS + x];
            }
        }
    }
}

fn copy_mc_block(
    reference: &Plane,
    dst: &mut Plane,
    by: usize,
    bx: usize,
    bs: usize,
    mv_y: i32,
    mv_x: i32,
) {
    let (w, h) = (dst.width(), dst.height());
    for y in 0..bs {
        for x in 0..bs {
            if by + y < h && bx + x < w {
                let v = reference.at_half_pel(
                    (by + y) as isize * 2 + mv_y as isize,
                    (bx + x) as isize * 2 + mv_x as isize,
                );
                *dst.at_mut(by + y, bx + x) = v;
            }
        }
    }
}

fn intra_dc_pred(recon: &Plane, by: usize, bx: usize) -> f32 {
    // Mean of the reconstructed column to the left / row above, 0.5 default.
    let mut acc = 0.0;
    let mut cnt = 0.0;
    if bx >= 1 {
        for y in 0..BS.min(recon.height() - by) {
            acc += recon.at(by + y, bx - 1);
            cnt += 1.0;
        }
    }
    if by >= 1 {
        for x in 0..BS.min(recon.width() - bx) {
            acc += recon.at(by - 1, bx + x);
            cnt += 1.0;
        }
    }
    if cnt > 0.0 {
        acc / cnt
    } else {
        0.5
    }
}

fn encode_sym(rc: &mut RangeEncoder, model: &mut Histogram, sym: u32) {
    rc.encode(&model.interval(sym), model.total());
    model.record(sym);
}

fn decode_sym(rc: &mut RangeDecoder, model: &mut Histogram) -> u32 {
    let f = rc.decode_freq(model.total());
    let (sym, iv) = model.lookup(f);
    rc.decode_update(&iv, model.total());
    model.record(sym);
    sym
}

/// Codes one quantized block: DC symbol, last-significant index, then the
/// AC values up to `last` in zig-zag order.
fn code_block(rc: &mut RangeEncoder, models: &mut Models, q: [i32; BS * BS], _intra: bool) {
    let order = dct::zigzag_order();
    let dc = q[0].clamp(-DC_CLAMP, DC_CLAMP);
    encode_sym(rc, &mut models.dc, (dc + DC_CLAMP) as u32);
    // Last significant AC position in zig-zag order (1..=63), 0 = none.
    let mut last = 0usize;
    for (zi, &idx) in order.iter().enumerate().skip(1) {
        if q[idx] != 0 {
            last = zi;
        }
    }
    encode_sym(rc, &mut models.last, last as u32);
    for &idx in order.iter().take(last + 1).skip(1) {
        let v = q[idx].clamp(-AC_CLAMP, AC_CLAMP);
        encode_sym(rc, &mut models.ac, (v + AC_CLAMP) as u32);
    }
}

fn decode_block(rc: &mut RangeDecoder, models: &mut Models, _intra: bool) -> [i32; BS * BS] {
    let order = dct::zigzag_order();
    let mut q = [0_i32; BS * BS];
    q[0] = decode_sym(rc, &mut models.dc) as i32 - DC_CLAMP;
    let last = decode_sym(rc, &mut models.last) as usize;
    for &idx in order.iter().take(last + 1).skip(1) {
        q[idx] = decode_sym(rc, &mut models.ac) as i32 - AC_CLAMP;
    }
    q
}

/// Light deblocking: smooths 1 sample each side of 8-pixel block
/// boundaries where the boundary step is small (i.e. likely a coding
/// artefact rather than a real edge).
fn deblock(p: &mut Plane, step: f32) {
    let (w, h) = (p.width(), p.height());
    let thr = 4.0 * step;
    // Vertical boundaries.
    for x in (BS..w).step_by(BS) {
        for y in 0..h {
            let a = p.at(y, x - 1);
            let b = p.at(y, x);
            let d = b - a;
            if d.abs() < thr {
                *p.at_mut(y, x - 1) = a + d / 4.0;
                *p.at_mut(y, x) = b - d / 4.0;
            }
        }
    }
    // Horizontal boundaries.
    for y in (BS..h).step_by(BS) {
        for x in 0..w {
            let a = p.at(y - 1, x);
            let b = p.at(y, x);
            let d = b - a;
            if d.abs() < thr {
                *p.at_mut(y - 1, x) = a + d / 4.0;
                *p.at_mut(y, x) = b - d / 4.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_video::metrics::psnr_sequence;
    use nvc_video::synthetic::{SceneConfig, Synthesizer};

    fn test_seq(frames: usize) -> Sequence {
        Synthesizer::new(SceneConfig::uvg_like(64, 48, frames)).generate()
    }

    #[test]
    fn encode_decode_bitstream_matches_loop_reconstruction() {
        let seq = test_seq(3);
        for profile in [Profile::avc_like(), Profile::hevc_like()] {
            let codec = HybridCodec::new(profile.clone());
            let coded = codec.encode(&seq, 24).unwrap();
            let decoded = codec.decode(&coded.bitstream).unwrap();
            assert_eq!(decoded.frames().len(), 3, "{}", profile.name);
            for (a, b) in decoded.frames().iter().zip(coded.decoded.frames()) {
                let diff = a.tensor().sub(b.tensor()).unwrap().max_abs();
                assert!(diff < 1e-6, "{}: decoder drift {diff}", profile.name);
            }
        }
    }

    #[test]
    fn quality_improves_with_lower_qp() {
        let seq = test_seq(2);
        let codec = HybridCodec::new(Profile::hevc_like());
        let hi = codec.encode(&seq, 12).unwrap();
        let lo = codec.encode(&seq, 36).unwrap();
        let pairs_hi: Vec<_> = seq.frames().iter().zip(hi.decoded.frames()).collect();
        let pairs_lo: Vec<_> = seq.frames().iter().zip(lo.decoded.frames()).collect();
        let psnr_hi =
            psnr_sequence(&pairs_hi.iter().map(|(a, b)| (*a, *b)).collect::<Vec<_>>()).unwrap();
        let psnr_lo =
            psnr_sequence(&pairs_lo.iter().map(|(a, b)| (*a, *b)).collect::<Vec<_>>()).unwrap();
        assert!(psnr_hi > psnr_lo + 3.0, "qp12 {psnr_hi} vs qp36 {psnr_lo}");
        assert!(hi.total_bytes > lo.total_bytes);
    }

    #[test]
    fn hevc_profile_beats_avc_profile() {
        // At equal QP the HEVC-like toolset should spend fewer bits
        // (better prediction) for at-least-comparable quality.
        let seq = Synthesizer::new(SceneConfig::hevc_b_like(64, 48, 4)).generate();
        let qp = 26;
        let avc = HybridCodec::new(Profile::avc_like())
            .encode(&seq, qp)
            .unwrap();
        let hevc = HybridCodec::new(Profile::hevc_like())
            .encode(&seq, qp)
            .unwrap();
        let p_avc = psnr_sequence(
            &seq.frames()
                .iter()
                .zip(avc.decoded.frames())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let p_hevc = psnr_sequence(
            &seq.frames()
                .iter()
                .zip(hevc.decoded.frames())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        // Accept either fewer bits at similar quality or better quality.
        let rate_gain = avc.total_bytes as f64 / hevc.total_bytes as f64;
        assert!(
            rate_gain > 1.02 || p_hevc > p_avc + 0.2,
            "HEVC-like must beat AVC-like: rate x{rate_gain:.3}, psnr {p_hevc:.2} vs {p_avc:.2}"
        );
    }

    #[test]
    fn still_sequence_is_nearly_free() {
        // A static scene: P frames should be almost all skip blocks.
        let f = test_seq(1).frames()[0].clone();
        let frames = vec![f.clone(), f.clone(), f.clone(), f];
        let seq = Sequence::new("static", frames, 30.0).unwrap();
        let coded = HybridCodec::new(Profile::hevc_like())
            .encode(&seq, 24)
            .unwrap();
        let intra = coded.bytes_per_frame[0];
        for &p in &coded.bytes_per_frame[1..] {
            // P frames still pay per-block skip flags plus coder flush.
            assert!(p * 5 < intra, "P frame {p} bytes vs intra {intra}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let codec = HybridCodec::new(Profile::hevc_like());
        assert!(codec.decode(&[]).is_err());
        assert!(codec.decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn streaming_matches_one_shot() {
        use nvc_video::codec::stream_roundtrip;
        let seq = test_seq(3);
        let codec = HybridCodec::new(Profile::hevc_like());
        let (coded, drift) = stream_roundtrip(&codec, &seq, 24).unwrap();
        assert_eq!(
            drift, 0.0,
            "streaming decode must match the closed loop exactly"
        );
        let one_shot = codec.decode(&coded.to_bytes()).unwrap();
        for (a, b) in one_shot.frames().iter().zip(coded.decoded.frames()) {
            assert_eq!(a.tensor().as_slice(), b.tensor().as_slice());
        }
    }

    #[test]
    fn decoder_session_rejects_malformed_packets() {
        use nvc_video::codec::DecoderSession as _;
        let seq = test_seq(3);
        let codec = HybridCodec::new(Profile::hevc_like());
        let coded = nvc_video::codec::encode_sequence(&codec, &seq, 24).unwrap();
        let bytes: Vec<Vec<u8>> = coded.packets.iter().map(|p| p.to_bytes()).collect();
        // Truncation and corruption of the first packet.
        assert!(codec
            .start_decode()
            .push_packet(&bytes[0][..bytes[0].len() - 1])
            .is_err());
        let mut corrupt = bytes[0].clone();
        corrupt[20] ^= 0x55;
        assert!(codec.start_decode().push_packet(&corrupt).is_err());
        // P packet cannot lead a stream; frame indices cannot skip.
        assert!(codec.start_decode().push_packet(&bytes[1]).is_err());
        let mut dec = codec.start_decode();
        dec.push_packet(&bytes[0]).unwrap();
        assert!(dec.push_packet(&bytes[2]).is_err());
    }

    #[test]
    fn joinable_stream_decodes_from_any_intra() {
        use nvc_video::codec::{DecoderSession as _, EncoderSession as _};
        let seq = test_seq(6);
        let codec = HybridCodec::new(Profile::hevc_like());
        let mut enc = codec.start_encode(24);
        assert!(enc.set_join_headers(true), "hybrid supports joinable mode");
        let mut packets = Vec::new();
        for (i, frame) in seq.frames().iter().enumerate() {
            if i == 3 {
                enc.restart_gop();
            }
            packets.push(enc.push_frame(frame).unwrap());
        }
        assert_eq!(packets[3].kind, FrameKind::Intra);
        let mut full = codec.start_decode();
        let all: Vec<Frame> = packets
            .iter()
            .map(|p| full.push_packet(&p.to_bytes()).unwrap())
            .collect();
        let mut late = codec.start_decode();
        for (i, p) in packets.iter().enumerate().skip(3) {
            let f = late.push_packet(&p.to_bytes()).unwrap();
            assert_eq!(
                f.tensor().as_slice(),
                all[i].tensor().as_slice(),
                "late join diverged at frame {i}"
            );
        }
        assert_eq!(late.frames_decoded(), 3);
    }

    #[test]
    fn non_multiple_of_block_sizes_roundtrip() {
        let seq = Synthesizer::new(SceneConfig::mcl_jcv_like(52, 38, 2)).generate();
        let codec = HybridCodec::new(Profile::hevc_like());
        let coded = codec.encode(&seq, 20).unwrap();
        let decoded = codec.decode(&coded.bitstream).unwrap();
        assert_eq!(decoded.width(), 52);
        assert_eq!(decoded.height(), 38);
        for (a, b) in decoded.frames().iter().zip(coded.decoded.frames()) {
            assert!(a.tensor().sub(b.tensor()).unwrap().max_abs() < 1e-6);
        }
    }
}
