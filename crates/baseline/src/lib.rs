//! Classical hybrid block codec — the reproduction's stand-in for the
//! H.264 / H.265 reference software used as BD-rate anchors in the paper's
//! Table I.
//!
//! The codec is a from-scratch implementation of the canonical hybrid
//! coding loop:
//!
//! * 8×8 block DCT with dead-zone quantization and zig-zag scanning,
//! * DC-predictive intra coding,
//! * full-search (optionally half-pel) motion-compensated inter coding
//!   with skip mode,
//! * an adaptive range coder for all symbols (real bits, no estimates),
//! * an optional deblocking filter.
//!
//! Two [`Profile`]s bracket the generational gap the paper relies on:
//! [`Profile::avc_like`] (16×16 motion blocks, full-pel search, no
//! deblocking) and [`Profile::hevc_like`] (8×8 motion blocks, half-pel
//! search, deblocking). The HEVC-like profile is the **anchor** for every
//! BDBR number in the reproduction, mirroring the paper's use of H.265.
//!
//! # Example
//!
//! ```
//! use nvc_baseline::{HybridCodec, Profile};
//! use nvc_video::synthetic::{SceneConfig, Synthesizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let seq = Synthesizer::new(SceneConfig::uvg_like(48, 32, 3)).generate();
//! let codec = HybridCodec::new(Profile::hevc_like());
//! let coded = codec.encode(&seq, 24)?;
//! assert_eq!(coded.decoded.frames().len(), 3);
//! assert!(coded.total_bytes > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod codec;
mod dct;
mod plane;

pub use codec::{
    CodecError, CodedSequence, HybridCodec, HybridDecoderSession, HybridEncoderSession,
};
pub use plane::Plane;

/// Configuration of the hybrid codec's toolset.
///
/// The two constructors model the H.264→H.265 generation gap with three
/// levers: motion partition size, sub-pel precision and deblocking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Display name used in reports.
    pub name: &'static str,
    /// Motion-compensation block size in pixels (transform is always 8×8).
    pub mc_block: usize,
    /// Full-search motion range in integer pixels.
    pub search_range: i32,
    /// Enables half-pel motion refinement.
    pub half_pel: bool,
    /// Enables the deblocking filter.
    pub deblock: bool,
}

impl Profile {
    /// H.264/AVC-like toolset: 16×16 motion partitions, full-pel search,
    /// no deblocking.
    pub fn avc_like() -> Self {
        Profile {
            name: "AVC-like",
            mc_block: 16,
            search_range: 8,
            half_pel: false,
            deblock: false,
        }
    }

    /// H.265/HEVC-like toolset: 8×8 motion partitions, half-pel search,
    /// deblocking. This profile is the BD-rate anchor.
    pub fn hevc_like() -> Self {
        Profile {
            name: "HEVC-like",
            mc_block: 8,
            search_range: 12,
            half_pel: true,
            deblock: true,
        }
    }
}
