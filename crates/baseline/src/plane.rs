//! Single-channel image plane with the sampling helpers a block codec
//! needs (clamped access, SAD, half-pel interpolation).

/// A `w × h` plane of `f32` samples in display order.
#[derive(Debug, Clone, PartialEq)]
pub struct Plane {
    w: usize,
    h: usize,
    data: Vec<f32>,
}

impl Plane {
    /// Creates a zero plane.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(w: usize, h: usize) -> Self {
        assert!(w > 0 && h > 0, "plane must be non-empty");
        Plane {
            w,
            h,
            data: vec![0.0; w * h],
        }
    }

    /// Creates a plane from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != w * h`.
    pub fn from_vec(w: usize, h: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), w * h, "buffer length mismatch");
        Plane { w, h, data }
    }

    /// Plane width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Plane height.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Row-major sample buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major sample buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Sample at `(y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn at(&self, y: usize, x: usize) -> f32 {
        self.data[y * self.w + x]
    }

    /// Mutable sample at `(y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn at_mut(&mut self, y: usize, x: usize) -> &mut f32 {
        &mut self.data[y * self.w + x]
    }

    /// Clamp-to-edge sample at signed coordinates.
    #[inline]
    pub fn at_clamped(&self, y: isize, x: isize) -> f32 {
        let y = y.clamp(0, self.h as isize - 1) as usize;
        let x = x.clamp(0, self.w as isize - 1) as usize;
        self.at(y, x)
    }

    /// Sample at half-pel precision: coordinates are in half-pel units
    /// (`2·y` = integer row `y`); odd coordinates bilinearly interpolate.
    pub fn at_half_pel(&self, y2: isize, x2: isize) -> f32 {
        let (iy, fy) = (y2.div_euclid(2), y2.rem_euclid(2));
        let (ix, fx) = (x2.div_euclid(2), x2.rem_euclid(2));
        match (fy, fx) {
            (0, 0) => self.at_clamped(iy, ix),
            (0, 1) => 0.5 * (self.at_clamped(iy, ix) + self.at_clamped(iy, ix + 1)),
            (1, 0) => 0.5 * (self.at_clamped(iy, ix) + self.at_clamped(iy + 1, ix)),
            _ => {
                0.25 * (self.at_clamped(iy, ix)
                    + self.at_clamped(iy, ix + 1)
                    + self.at_clamped(iy + 1, ix)
                    + self.at_clamped(iy + 1, ix + 1))
            }
        }
    }

    /// Sum of absolute differences between a `bs × bs` block at `(y, x)`
    /// in `self` and the block at half-pel position `(ry2, rx2)` in `reference`.
    pub fn sad(
        &self,
        y: usize,
        x: usize,
        bs: usize,
        reference: &Plane,
        ry2: isize,
        rx2: isize,
    ) -> f64 {
        let mut acc = 0.0_f64;
        for by in 0..bs {
            for bx in 0..bs {
                let cur = self.at_clamped((y + by) as isize, (x + bx) as isize);
                let r = reference.at_half_pel(ry2 + 2 * by as isize, rx2 + 2 * bx as isize);
                acc += (cur - r).abs() as f64;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> Plane {
        let data = (0..w * h).map(|i| i as f32).collect();
        Plane::from_vec(w, h, data)
    }

    #[test]
    fn clamped_access() {
        let p = ramp(4, 3);
        assert_eq!(p.at_clamped(-5, 0), 0.0);
        assert_eq!(p.at_clamped(0, 10), 3.0);
        assert_eq!(p.at_clamped(10, 10), 11.0);
    }

    #[test]
    fn half_pel_interpolates() {
        let p = ramp(4, 4);
        // Between columns 0 and 1 of row 0: (0 + 1)/2.
        assert_eq!(p.at_half_pel(0, 1), 0.5);
        // Between rows 0 and 1 of column 0: (0 + 4)/2.
        assert_eq!(p.at_half_pel(1, 0), 2.0);
        // Centre of 2x2: (0+1+4+5)/4.
        assert_eq!(p.at_half_pel(1, 1), 2.5);
        // Integer positions are exact.
        assert_eq!(p.at_half_pel(4, 6), p.at(2, 3));
    }

    #[test]
    fn sad_zero_on_identical() {
        let p = ramp(8, 8);
        assert_eq!(p.sad(0, 0, 4, &p, 0, 0), 0.0);
        // Shift by one column: |Δ| = 1 per sample.
        let sad = p.sad(0, 0, 4, &p, 0, 2);
        assert_eq!(sad, 16.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_plane_rejected() {
        let _ = Plane::zeros(0, 3);
    }
}
