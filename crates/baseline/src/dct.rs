//! 8×8 DCT-II / DCT-III transform pair, dead-zone quantization and zig-zag
//! scanning — the transform toolbox of the classical hybrid codec.

/// Transform block size.
pub const BS: usize = 8;

fn dct_basis(u: usize, x: usize) -> f32 {
    let n = BS as f32;
    let scale = if u == 0 {
        (1.0 / n).sqrt()
    } else {
        (2.0 / n).sqrt()
    };
    scale * ((std::f32::consts::PI * (x as f32 + 0.5) * u as f32) / n).cos()
}

/// Forward 8×8 DCT-II (orthonormal) of a row-major block.
pub fn forward(block: &[f32; BS * BS]) -> [f32; BS * BS] {
    let mut tmp = [0.0_f32; BS * BS];
    // Rows.
    for y in 0..BS {
        for u in 0..BS {
            let mut acc = 0.0;
            for x in 0..BS {
                acc += block[y * BS + x] * dct_basis(u, x);
            }
            tmp[y * BS + u] = acc;
        }
    }
    // Columns.
    let mut out = [0.0_f32; BS * BS];
    for v in 0..BS {
        for u in 0..BS {
            let mut acc = 0.0;
            for y in 0..BS {
                acc += tmp[y * BS + u] * dct_basis(v, y);
            }
            out[v * BS + u] = acc;
        }
    }
    out
}

/// Inverse 8×8 DCT (DCT-III, orthonormal).
pub fn inverse(coef: &[f32; BS * BS]) -> [f32; BS * BS] {
    let mut tmp = [0.0_f32; BS * BS];
    // Columns.
    for u in 0..BS {
        for y in 0..BS {
            let mut acc = 0.0;
            for v in 0..BS {
                acc += coef[v * BS + u] * dct_basis(v, y);
            }
            tmp[y * BS + u] = acc;
        }
    }
    // Rows.
    let mut out = [0.0_f32; BS * BS];
    for y in 0..BS {
        for x in 0..BS {
            let mut acc = 0.0;
            for u in 0..BS {
                acc += tmp[y * BS + u] * dct_basis(u, x);
            }
            out[y * BS + x] = acc;
        }
    }
    out
}

/// Maps a quality parameter (0 = finest) to a quantizer step, H.26x-style:
/// the step doubles every 6 QP.
pub fn qp_to_step(qp: u8) -> f32 {
    0.002 * (2.0_f32).powf(qp as f32 / 6.0)
}

/// Dead-zone quantization: `sign(c) · floor(|c|/step + bias)` with
/// `bias = 1/3` (encoder-side rounding typical of hybrid codecs).
pub fn quantize(coef: &[f32; BS * BS], step: f32) -> [i32; BS * BS] {
    let mut out = [0_i32; BS * BS];
    for (o, &c) in out.iter_mut().zip(coef) {
        let mag = (c.abs() / step + 1.0 / 3.0).floor() as i32;
        *o = if c < 0.0 { -mag } else { mag };
    }
    out
}

/// Reconstruction: `q · step`.
pub fn dequantize(q: &[i32; BS * BS], step: f32) -> [f32; BS * BS] {
    let mut out = [0.0_f32; BS * BS];
    for (o, &v) in out.iter_mut().zip(q) {
        *o = v as f32 * step;
    }
    out
}

/// The standard 8×8 zig-zag scan order (JPEG/H.26x).
pub fn zigzag_order() -> [usize; BS * BS] {
    let mut order = [0usize; BS * BS];
    let mut idx = 0;
    for s in 0..(2 * BS - 1) {
        let coords: Vec<(usize, usize)> = (0..=s)
            .filter_map(|i| {
                let (y, x) = (i, s - i);
                (y < BS && x < BS).then_some((y, x))
            })
            .collect();
        let iter: Box<dyn Iterator<Item = &(usize, usize)>> = if s % 2 == 0 {
            Box::new(coords.iter().rev())
        } else {
            Box::new(coords.iter())
        };
        for &(y, x) in iter {
            order[idx] = y * BS + x;
            idx += 1;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(seed: f32) -> [f32; 64] {
        let mut b = [0.0_f32; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i as f32 * 0.7 + seed).sin() * 0.4 + 0.5).clamp(0.0, 1.0);
        }
        b
    }

    #[test]
    fn dct_roundtrips() {
        let b = sample_block(1.0);
        let rec = inverse(&forward(&b));
        for (a, r) in b.iter().zip(&rec) {
            assert!((a - r).abs() < 1e-5);
        }
    }

    #[test]
    fn dct_is_orthonormal() {
        // Energy preservation (Parseval).
        let b = sample_block(2.0);
        let c = forward(&b);
        let eb: f32 = b.iter().map(|v| v * v).sum();
        let ec: f32 = c.iter().map(|v| v * v).sum();
        assert!((eb - ec).abs() < 1e-4);
    }

    #[test]
    fn dc_coefficient_is_scaled_mean() {
        let b = [0.5_f32; 64];
        let c = forward(&b);
        // DC = 8 * mean for an orthonormal 8x8 DCT.
        assert!((c[0] - 4.0).abs() < 1e-5);
        for &ac in &c[1..] {
            assert!(ac.abs() < 1e-5);
        }
    }

    #[test]
    fn quantization_roundtrip_error_is_bounded() {
        let b = sample_block(3.0);
        let c = forward(&b);
        let step = 0.05;
        let q = quantize(&c, step);
        let dq = dequantize(&q, step);
        for (orig, rec) in c.iter().zip(&dq) {
            assert!((orig - rec).abs() <= step, "{orig} vs {rec}");
        }
    }

    #[test]
    fn dead_zone_zeroes_small_coefficients() {
        let mut c = [0.0_f32; 64];
        c[5] = 0.03;
        c[6] = -0.03;
        let q = quantize(&c, 0.05); // |c|/step = 0.6 < 1 - 1/3 ... floor(0.6+0.333)=0
        assert_eq!(q[5], 0);
        assert_eq!(q[6], 0);
    }

    #[test]
    fn qp_doubles_every_six() {
        let s0 = qp_to_step(10);
        let s6 = qp_to_step(16);
        assert!((s6 / s0 - 2.0).abs() < 1e-5);
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let order = zigzag_order();
        let mut seen = [false; 64];
        for &i in &order {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        // First entries follow the canonical pattern.
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 1);
        assert_eq!(order[2], 8);
        assert_eq!(order[3], 16);
        assert_eq!(order[4], 9);
        assert_eq!(order[5], 2);
    }
}
