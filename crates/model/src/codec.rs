//! End-to-end CTVC codec: encoder, bitstream format and decoder.

use crate::config::{CtvcConfig, RatePoint};
use crate::latent;
use crate::modules::{
    CompressionAutoencoder, DeformableCompensation, FeatureExtractor, FrameReconstructor,
    MotionCnn, MOTION_SCALE,
};
use crate::motion;
use nvc_entropy::container::{read_sections, Section, SectionWriter};
use nvc_entropy::{BitReader, BitWriter, CodingError};
use nvc_tensor::{Shape, Tensor, TensorError};
use nvc_video::{Frame, Sequence, VideoError};
use std::error::Error;
use std::fmt;

/// Error type for the CTVC codec.
#[derive(Debug)]
#[non_exhaustive]
pub enum CtvcError {
    /// Invalid configuration.
    Config(String),
    /// Tensor/shape failure.
    Tensor(TensorError),
    /// Entropy-coding failure (malformed bitstream).
    Coding(CodingError),
    /// Frame/sequence failure.
    Video(VideoError),
    /// Semantically invalid input (e.g. resolution not divisible by 16).
    BadInput(String),
}

impl fmt::Display for CtvcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtvcError::Config(s) => write!(f, "bad configuration: {s}"),
            CtvcError::Tensor(e) => write!(f, "tensor error: {e}"),
            CtvcError::Coding(e) => write!(f, "coding error: {e}"),
            CtvcError::Video(e) => write!(f, "video error: {e}"),
            CtvcError::BadInput(s) => write!(f, "bad input: {s}"),
        }
    }
}

impl Error for CtvcError {}

impl From<TensorError> for CtvcError {
    fn from(e: TensorError) -> Self {
        CtvcError::Tensor(e)
    }
}

impl From<CodingError> for CtvcError {
    fn from(e: CodingError) -> Self {
        CtvcError::Coding(e)
    }
}

impl From<VideoError> for CtvcError {
    fn from(e: VideoError) -> Self {
        CtvcError::Video(e)
    }
}

/// Result of encoding: bitstream, in-loop reconstruction and rate stats.
#[derive(Debug, Clone)]
pub struct CtvcCoded {
    /// Complete bitstream.
    pub bitstream: Vec<u8>,
    /// Decoder-identical reconstruction.
    pub decoded: Sequence,
    /// Payload bytes per frame.
    pub bytes_per_frame: Vec<usize>,
    /// Total bitstream bytes.
    pub total_bytes: usize,
    /// Bits per pixel over the sequence.
    pub bpp: f64,
}

/// The CTVC-Net codec (see crate docs).
#[derive(Debug, Clone)]
pub struct CtvcCodec {
    cfg: CtvcConfig,
    fe: FeatureExtractor,
    fr: FrameReconstructor,
    me_cnn: MotionCnn,
    comp: DeformableCompensation,
    motion_ae: CompressionAutoencoder,
    residual_ae: CompressionAutoencoder,
}

impl CtvcCodec {
    /// Builds all modules from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CtvcError::Config`] for invalid configurations.
    pub fn new(cfg: CtvcConfig) -> Result<Self, CtvcError> {
        cfg.validate().map_err(CtvcError::Config)?;
        Ok(CtvcCodec {
            fe: FeatureExtractor::new(&cfg)?,
            fr: FrameReconstructor::new(&cfg)?,
            me_cnn: MotionCnn::new(&cfg)?,
            comp: DeformableCompensation::new(&cfg)?,
            motion_ae: CompressionAutoencoder::new(&cfg, cfg.seed ^ 0x0001)?,
            residual_ae: CompressionAutoencoder::new(&cfg, cfg.seed ^ 0x0002)?,
            cfg,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &CtvcConfig {
        &self.cfg
    }

    /// Access to the motion-estimation CNN shell (used by workload
    /// accounting; the functional path uses block matching).
    pub fn motion_cnn(&self) -> &MotionCnn {
        &self.me_cnn
    }

    fn check_dims(&self, w: usize, h: usize) -> Result<(), CtvcError> {
        if w % 16 != 0 || h % 16 != 0 || w == 0 || h == 0 {
            return Err(CtvcError::BadInput(format!(
                "resolution {w}x{h} must be a non-zero multiple of 16"
            )));
        }
        Ok(())
    }

    fn mask_fn<'a>(
        &'a self,
        ae: &'a CompressionAutoencoder,
    ) -> Option<Box<dyn Fn(&Tensor) -> Result<Tensor, TensorError> + 'a>> {
        if self.cfg.attention {
            Some(Box::new(move |z: &Tensor| ae.latent_mask(z)))
        } else {
            None
        }
    }

    fn code_latent(
        &self,
        z: &Tensor,
        ae: &CompressionAutoencoder,
        step: f32,
    ) -> Result<(Vec<u8>, Tensor), CtvcError> {
        let mask_fn = self.mask_fn(ae);
        let enc_mask = match &mask_fn {
            Some(f) => Some(f(z)?),
            None => None,
        };
        let symbols = latent::quantize(z, step, enc_mask.as_ref())?;
        let payload = latent::encode_payload(&symbols, z.shape())?;
        let z_hat = latent::dequantize(&symbols, z.shape(), step, mask_fn.as_deref())?;
        Ok((payload, z_hat))
    }

    fn decode_latent(
        &self,
        payload: &[u8],
        shape: Shape,
        ae: &CompressionAutoencoder,
        step: f32,
    ) -> Result<Tensor, CtvcError> {
        let symbols = latent::decode_payload(payload, shape)?;
        let mask_fn = self.mask_fn(ae);
        Ok(latent::dequantize(&symbols, shape, step, mask_fn.as_deref())?)
    }

    /// Reconstructed motion tensor → dense motion field usable by the
    /// compensation (rounding to full-pel when deformable warping is off).
    fn motion_for_compensation(&self, o_hat: &Tensor) -> Tensor {
        if self.cfg.deformable {
            o_hat.clone()
        } else {
            o_hat.map(|v| (v * MOTION_SCALE).round() / MOTION_SCALE)
        }
    }

    /// Decodes one P frame given the reference *features* `F̂_{t−1}` and
    /// the two latent payloads; returns the reconstructed features `F̂_t`
    /// and the pixel frame. Shared by encoder (closed loop) and decoder so
    /// both stay bit-identical.
    ///
    /// Following FVC [5] ("all components operate within the feature
    /// space"), the decoder's reference is the feature tensor itself —
    /// re-extracting features from decoded pixels every frame would
    /// compound the feature↔pixel roundtrip error across the GOP.
    fn reconstruct_p(
        &self,
        f_ref: &Tensor,
        motion_payload: &[u8],
        residual_payload: &[u8],
        rate: RatePoint,
    ) -> Result<(Tensor, Tensor), CtvcError> {
        let (_, _, h2, w2) = f_ref.shape().dims();
        let latent_shape = Shape::new(1, self.cfg.n, h2 / 8, w2 / 8);
        let zm = self.decode_latent(motion_payload, latent_shape, &self.motion_ae, rate.latent_step())?;
        let o_hat = self.motion_ae.synthesis.forward(&zm)?;
        let o_mc = self.motion_for_compensation(&o_hat);
        let f_bar = self.comp.forward(f_ref, &o_mc)?;
        let zr = self.decode_latent(
            residual_payload,
            latent_shape,
            &self.residual_ae,
            rate.latent_step(),
        )?;
        let r_hat = self.residual_ae.synthesis.forward(&zr)?;
        let f_hat = f_bar.add(&r_hat)?;
        let px = self.fr.forward(&f_hat)?.map(|v| v.clamp(0.0, 1.0));
        Ok((f_hat, px))
    }

    /// Decodes the intra frame from its payload, returning reconstructed
    /// features and pixels.
    fn reconstruct_intra(
        &self,
        payload: &[u8],
        w: usize,
        h: usize,
        rate: RatePoint,
    ) -> Result<(Tensor, Tensor), CtvcError> {
        let shape = Shape::new(1, self.cfg.n, h / 2, w / 2);
        let symbols = latent::decode_intra_payload(payload, shape)?;
        let f_hat = latent::dequantize(&symbols, shape, rate.intra_step(), None)?;
        let px = self.fr.forward(&f_hat)?.map(|v| v.clamp(0.0, 1.0));
        Ok((f_hat, px))
    }

    /// Encodes a sequence at the given rate point.
    ///
    /// # Errors
    ///
    /// Returns [`CtvcError::BadInput`] unless both dimensions are
    /// multiples of 16.
    pub fn encode(&self, seq: &Sequence, rate: RatePoint) -> Result<CtvcCoded, CtvcError> {
        let (w, h) = (seq.width(), seq.height());
        self.check_dims(w, h)?;

        let mut header = BitWriter::new();
        header.write_bits(w as u32, 16);
        header.write_bits(h as u32, 16);
        header.write_bits(seq.frames().len() as u32, 16);
        header.write_bits(self.cfg.n as u32, 16);
        header.write_bits(rate.index() as u32, 8);
        header.write_bit(self.cfg.attention);
        header.write_bit(self.cfg.deformable);

        let mut sections = SectionWriter::new();
        sections.push(Section::SideInfo, header.finish());

        let mut bytes_per_frame = Vec::with_capacity(seq.frames().len());
        let mut decoded_frames: Vec<Frame> = Vec::with_capacity(seq.frames().len());
        // Closed-loop reference *features* (FVC-style feature-space state).
        let mut reference_f: Option<Tensor> = None;

        for frame in seq.frames() {
            let x = frame.tensor();
            match &reference_f {
                None => {
                    // Intra: quantize the features and code them with the
                    // predictive (pair + DPCM) intra coder.
                    let f = self.fe.forward(x)?;
                    let symbols = latent::quantize(&f, rate.intra_step(), None)?;
                    let payload = latent::encode_intra_payload(&symbols, f.shape())?;
                    let (f_hat, rec) = self.reconstruct_intra(&payload, w, h, rate)?;
                    bytes_per_frame.push(payload.len());
                    sections.push(Section::Intra, payload);
                    decoded_frames.push(Frame::from_tensor(rec)?);
                    reference_f = Some(f_hat);
                }
                Some(f_ref) => {
                    let f_ref = f_ref.clone();
                    let f_cur = self.fe.forward(x)?;
                    // Functional motion estimation (block matching).
                    let field = motion::estimate_motion(
                        &motion::matching_plane(&f_cur),
                        &motion::matching_plane(&f_ref),
                        self.cfg.me_block,
                        self.cfg.me_range,
                        self.cfg.half_pel_motion,
                    );
                    // Embed into the N-channel motion tensor O_t.
                    let (_, _, fh, fw) = f_cur.shape().dims();
                    let n = self.cfg.n;
                    let o_t = Tensor::from_fn(Shape::new(1, n, fh, fw), |_, c, yy, xx| match c {
                        0 => field.at(0, 0, yy, xx) / MOTION_SCALE,
                        1 => field.at(0, 1, yy, xx) / MOTION_SCALE,
                        _ => 0.0,
                    });
                    let zm = self.motion_ae.analysis.forward(&o_t)?;
                    let (motion_payload, zm_hat) =
                        self.code_latent(&zm, &self.motion_ae, rate.latent_step())?;
                    // Closed loop: compensate with the *reconstructed* motion.
                    let o_hat = self.motion_ae.synthesis.forward(&zm_hat)?;
                    let o_mc = self.motion_for_compensation(&o_hat);
                    let f_bar = self.comp.forward(&f_ref, &o_mc)?;
                    let r_t = f_cur.sub(&f_bar)?;
                    let zr = self.residual_ae.analysis.forward(&r_t)?;
                    let (residual_payload, _zr_hat) =
                        self.code_latent(&zr, &self.residual_ae, rate.latent_step())?;
                    // Reconstruct exactly like the decoder will.
                    let (f_hat, rec) =
                        self.reconstruct_p(&f_ref, &motion_payload, &residual_payload, rate)?;
                    bytes_per_frame.push(motion_payload.len() + residual_payload.len());
                    sections.push(Section::Motion, motion_payload);
                    sections.push(Section::Residual, residual_payload);
                    decoded_frames.push(Frame::from_tensor(rec)?);
                    reference_f = Some(f_hat);
                }
            }
        }

        let bitstream = sections.finish();
        let total_bytes = bitstream.len();
        let bpp = total_bytes as f64 * 8.0 / (w * h * seq.frames().len()) as f64;
        Ok(CtvcCoded {
            bitstream,
            decoded: Sequence::new(
                format!("{}-{rate}", self.cfg.name),
                decoded_frames,
                seq.fps(),
            )?,
            bytes_per_frame,
            total_bytes,
            bpp,
        })
    }

    /// Decodes a bitstream produced by [`encode`](Self::encode) with a
    /// codec built from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CtvcError::BadInput`] on header/configuration mismatch
    /// and [`CtvcError::Coding`] on malformed payloads.
    pub fn decode(&self, bitstream: &[u8]) -> Result<Sequence, CtvcError> {
        let sections = read_sections(bitstream)?;
        let (first, rest) = sections
            .split_first()
            .ok_or_else(|| CtvcError::BadInput("empty bitstream".into()))?;
        if first.0 != Section::SideInfo {
            return Err(CtvcError::BadInput("missing header".into()));
        }
        let mut hr = BitReader::new(&first.1);
        let w = hr.read_bits(16)? as usize;
        let h = hr.read_bits(16)? as usize;
        let n_frames = hr.read_bits(16)? as usize;
        let n = hr.read_bits(16)? as usize;
        let rate = RatePoint::new(hr.read_bits(8)? as u8);
        let attention = hr.read_bit()?;
        let deformable = hr.read_bit()?;
        if n != self.cfg.n || attention != self.cfg.attention || deformable != self.cfg.deformable
        {
            return Err(CtvcError::BadInput(format!(
                "bitstream coded with N={n}, attention={attention}, deformable={deformable}; \
                 decoder configured as N={}, attention={}, deformable={}",
                self.cfg.n, self.cfg.attention, self.cfg.deformable
            )));
        }
        self.check_dims(w, h)?;

        let mut frames = Vec::with_capacity(n_frames);
        let mut reference_f: Option<Tensor> = None;
        let mut i = 0usize;
        while i < rest.len() {
            match rest[i].0 {
                Section::Intra => {
                    let (f_hat, rec) = self.reconstruct_intra(&rest[i].1, w, h, rate)?;
                    frames.push(Frame::from_tensor(rec)?);
                    reference_f = Some(f_hat);
                    i += 1;
                }
                Section::Motion => {
                    let residual = rest
                        .get(i + 1)
                        .filter(|(s, _)| *s == Section::Residual)
                        .ok_or_else(|| {
                            CtvcError::BadInput("motion section without residual".into())
                        })?;
                    let f_ref = reference_f
                        .as_ref()
                        .ok_or_else(|| CtvcError::BadInput("P frame before intra".into()))?;
                    let (f_hat, rec) = self.reconstruct_p(f_ref, &rest[i].1, &residual.1, rate)?;
                    frames.push(Frame::from_tensor(rec)?);
                    reference_f = Some(f_hat);
                    i += 2;
                }
                other => {
                    return Err(CtvcError::BadInput(format!(
                        "unexpected section {other:?}"
                    )))
                }
            }
        }
        if frames.len() != n_frames {
            return Err(CtvcError::BadInput(format!(
                "expected {n_frames} frames, decoded {}",
                frames.len()
            )));
        }
        Ok(Sequence::new(format!("{}-decoded", self.cfg.name), frames, 30.0)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_video::metrics::psnr_sequence;
    use nvc_video::synthetic::{SceneConfig, Synthesizer};

    fn seq(frames: usize) -> Sequence {
        Synthesizer::new(SceneConfig::uvg_like(48, 32, frames)).generate()
    }

    fn mean_psnr(orig: &Sequence, rec: &Sequence) -> f64 {
        let pairs: Vec<_> = orig.frames().iter().zip(rec.frames()).collect();
        psnr_sequence(&pairs.iter().map(|(a, b)| (*a, *b)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_exact() {
        let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
        let s = seq(3);
        let coded = codec.encode(&s, RatePoint::new(1)).unwrap();
        let decoded = codec.decode(&coded.bitstream).unwrap();
        assert_eq!(decoded.frames().len(), 3);
        for (a, b) in decoded.frames().iter().zip(coded.decoded.frames()) {
            let d = a.tensor().sub(b.tensor()).unwrap().max_abs();
            assert!(d < 1e-6, "decoder drift {d}");
        }
    }

    #[test]
    fn rate_points_trade_rate_for_quality() {
        let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
        let s = seq(3);
        let coarse = codec.encode(&s, RatePoint::new(0)).unwrap();
        let fine = codec.encode(&s, RatePoint::new(2)).unwrap();
        assert!(fine.total_bytes > coarse.total_bytes);
        let p_coarse = mean_psnr(&s, &coarse.decoded);
        let p_fine = mean_psnr(&s, &fine.decoded);
        assert!(
            p_fine > p_coarse,
            "finer rate point must improve quality: {p_fine:.2} vs {p_coarse:.2}"
        );
    }

    #[test]
    fn decoder_rejects_mismatched_config() {
        let enc = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
        let s = seq(2);
        let coded = enc.encode(&s, RatePoint::new(1)).unwrap();
        let dec = CtvcCodec::new(CtvcConfig::fvc_like(8)).unwrap();
        assert!(dec.decode(&coded.bitstream).is_err());
        assert!(enc.decode(&[]).is_err());
    }

    #[test]
    fn rejects_bad_resolutions() {
        let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
        let bad = Synthesizer::new(SceneConfig::uvg_like(50, 34, 2)).generate();
        assert!(codec.encode(&bad, RatePoint::new(1)).is_err());
    }

    #[test]
    fn variants_all_roundtrip() {
        let s = seq(2);
        for cfg in [
            CtvcConfig::ctvc_fxp(8),
            CtvcConfig::fvc_like(8),
            CtvcConfig::dvc_like(8),
        ] {
            let name = cfg.name;
            let codec = CtvcCodec::new(cfg).unwrap();
            let coded = codec.encode(&s, RatePoint::new(1)).unwrap();
            let decoded = codec.decode(&coded.bitstream).unwrap();
            for (a, b) in decoded.frames().iter().zip(coded.decoded.frames()) {
                let d = a.tensor().sub(b.tensor()).unwrap().max_abs();
                assert!(d < 1e-6, "{name}: decoder drift {d}");
            }
            let p = mean_psnr(&s, &coded.decoded);
            assert!(p > 20.0, "{name}: implausibly low quality {p:.2} dB");
        }
    }

    #[test]
    fn sparse_variant_stays_close_to_dense() {
        let s = seq(2);
        let dense = CtvcCodec::new(CtvcConfig::ctvc_fxp(8)).unwrap();
        let sparse = CtvcCodec::new(CtvcConfig::ctvc_sparse(8)).unwrap();
        let cd = dense.encode(&s, RatePoint::new(1)).unwrap();
        let cs = sparse.encode(&s, RatePoint::new(1)).unwrap();
        let pd = mean_psnr(&s, &cd.decoded);
        let ps = mean_psnr(&s, &cs.decoded);
        // Without the fine-tuning step the paper applies after pruning,
        // 50 % transform-domain sparsity costs a few dB; the ordering
        // FP ≥ FXP ≥ Sparse is what the reproduction preserves.
        assert!(
            pd - ps < 5.0 && ps > 25.0,
            "sparse ({ps:.2} dB) must stay usable next to dense ({pd:.2} dB)"
        );
    }
}
