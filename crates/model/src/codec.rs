//! End-to-end CTVC codec: encoder, bitstream format and decoder.
//!
//! The codec is organized around streaming sessions ([`CtvcEncoderSession`]
//! / [`CtvcDecoderSession`], via the workspace-wide
//! [`VideoCodec`](nvc_video::VideoCodec) trait): frames go in one at a
//! time, length-delimited CRC-protected packets come out, and all carried
//! state (the reference feature tensor, stream geometry, GOP position)
//! lives in the session structs. The whole-sequence
//! [`encode`](CtvcCodec::encode) / [`decode`](CtvcCodec::decode) methods
//! are thin wrappers over the sessions.

use crate::config::{CtvcConfig, RatePoint};
use crate::latent;
use crate::modules::{
    CompressionAutoencoder, DeformableCompensation, FeatureExtractor, FrameReconstructor,
    MotionCnn, MOTION_SCALE,
};
use crate::motion;
use nvc_core::ExecCtx;
use nvc_entropy::container::{read_sections, FrameKind, Packet, Section, SectionWriter};
use nvc_entropy::{BitReader, BitWriter, CodingError};
use nvc_tensor::{Shape, Tensor, TensorError};
use nvc_video::codec::{
    DecoderSession as DecoderSessionTrait, EncoderSession as EncoderSessionTrait, StreamStats,
    VideoCodec,
};
use nvc_video::rate::{RateMode, RateOutcome, SessionRateControl};
use nvc_video::{Frame, Sequence, VideoError};
use std::error::Error;
use std::fmt;
use std::sync::OnceLock;

/// Per-frame codec instrumentation, shared by every CTVC session in the
/// process: encode/decode wall time and coded bits per frame. Purely
/// observational — nothing here feeds back into coding decisions, so
/// bitstreams are byte-identical with telemetry in any mode.
struct CodecMetrics {
    encode_frame_us: nvc_telemetry::Histogram,
    decode_frame_us: nvc_telemetry::Histogram,
    frame_bits: nvc_telemetry::Histogram,
}

fn codec_metrics() -> &'static CodecMetrics {
    static METRICS: OnceLock<CodecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CodecMetrics {
        encode_frame_us: nvc_telemetry::histogram("nvc_ctvc_encode_frame_us"),
        decode_frame_us: nvc_telemetry::histogram("nvc_ctvc_decode_frame_us"),
        frame_bits: nvc_telemetry::histogram("nvc_ctvc_frame_bits"),
    })
}

/// Error type for the CTVC codec.
#[derive(Debug)]
#[non_exhaustive]
pub enum CtvcError {
    /// Invalid configuration.
    Config(String),
    /// Tensor/shape failure.
    Tensor(TensorError),
    /// Entropy-coding failure (malformed bitstream).
    Coding(CodingError),
    /// Frame/sequence failure.
    Video(VideoError),
    /// Semantically invalid input (e.g. resolution not divisible by 16).
    BadInput(String),
}

impl fmt::Display for CtvcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtvcError::Config(s) => write!(f, "bad configuration: {s}"),
            CtvcError::Tensor(e) => write!(f, "tensor error: {e}"),
            CtvcError::Coding(e) => write!(f, "coding error: {e}"),
            CtvcError::Video(e) => write!(f, "video error: {e}"),
            CtvcError::BadInput(s) => write!(f, "bad input: {s}"),
        }
    }
}

impl Error for CtvcError {}

impl From<TensorError> for CtvcError {
    fn from(e: TensorError) -> Self {
        CtvcError::Tensor(e)
    }
}

impl From<CodingError> for CtvcError {
    fn from(e: CodingError) -> Self {
        CtvcError::Coding(e)
    }
}

impl From<VideoError> for CtvcError {
    fn from(e: VideoError) -> Self {
        CtvcError::Video(e)
    }
}

/// Result of encoding: bitstream, in-loop reconstruction and rate stats.
#[derive(Debug, Clone)]
pub struct CtvcCoded {
    /// Complete bitstream.
    pub bitstream: Vec<u8>,
    /// Decoder-identical reconstruction.
    pub decoded: Sequence,
    /// Payload bytes per frame.
    pub bytes_per_frame: Vec<usize>,
    /// Total bitstream bytes.
    pub total_bytes: usize,
    /// Bits per pixel over the sequence.
    pub bpp: f64,
}

/// The CTVC-Net codec (see crate docs).
#[derive(Debug, Clone)]
pub struct CtvcCodec {
    cfg: CtvcConfig,
    fe: FeatureExtractor,
    fr: FrameReconstructor,
    me_cnn: MotionCnn,
    comp: DeformableCompensation,
    motion_ae: CompressionAutoencoder,
    residual_ae: CompressionAutoencoder,
    exec: ExecCtx,
}

impl CtvcCodec {
    /// Builds all modules from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CtvcError::Config`] for invalid configurations.
    pub fn new(cfg: CtvcConfig) -> Result<Self, CtvcError> {
        cfg.validate().map_err(CtvcError::Config)?;
        Ok(CtvcCodec {
            fe: FeatureExtractor::new(&cfg)?,
            fr: FrameReconstructor::new(&cfg)?,
            me_cnn: MotionCnn::new(&cfg)?,
            comp: DeformableCompensation::new(&cfg)?,
            motion_ae: CompressionAutoencoder::new(&cfg, cfg.seed ^ 0x0001)?,
            residual_ae: CompressionAutoencoder::new(&cfg, cfg.seed ^ 0x0002)?,
            exec: ExecCtx::with_threads(cfg.threads),
            cfg,
        })
    }

    /// The execution context layer work fans out on (configured by
    /// [`CtvcConfig::threads`]).
    pub fn exec(&self) -> &ExecCtx {
        &self.exec
    }

    /// The configuration.
    pub fn config(&self) -> &CtvcConfig {
        &self.cfg
    }

    /// Access to the motion-estimation CNN shell (used by workload
    /// accounting; the functional path uses block matching).
    pub fn motion_cnn(&self) -> &MotionCnn {
        &self.me_cnn
    }

    fn check_dims(&self, w: usize, h: usize) -> Result<(), CtvcError> {
        if !w.is_multiple_of(16) || !h.is_multiple_of(16) || w == 0 || h == 0 {
            return Err(CtvcError::BadInput(format!(
                "resolution {w}x{h} must be a non-zero multiple of 16"
            )));
        }
        Ok(())
    }

    fn mask_fn<'a>(&'a self, ae: &'a CompressionAutoencoder) -> Option<Box<latent::MaskFn<'a>>> {
        if self.cfg.attention {
            Some(Box::new(move |z: &Tensor| {
                ae.latent_mask_ctx(z, &self.exec)
            }))
        } else {
            None
        }
    }

    fn code_latent(
        &self,
        z: &Tensor,
        ae: &CompressionAutoencoder,
        step: f32,
    ) -> Result<(Vec<u8>, Tensor), CtvcError> {
        let mask_fn = self.mask_fn(ae);
        let enc_mask = match &mask_fn {
            Some(f) => Some(f(z)?),
            None => None,
        };
        let symbols = latent::quantize(z, step, enc_mask.as_ref())?;
        let payload = latent::encode_payload(&symbols, z.shape())?;
        let z_hat = latent::dequantize(&symbols, z.shape(), step, mask_fn.as_deref())?;
        Ok((payload, z_hat))
    }

    fn decode_latent(
        &self,
        payload: &[u8],
        shape: Shape,
        ae: &CompressionAutoencoder,
        step: f32,
    ) -> Result<Tensor, CtvcError> {
        let symbols = latent::decode_payload(payload, shape)?;
        let mask_fn = self.mask_fn(ae);
        Ok(latent::dequantize(
            &symbols,
            shape,
            step,
            mask_fn.as_deref(),
        )?)
    }

    /// Reconstructed motion tensor → dense motion field usable by the
    /// compensation (rounding to full-pel when deformable warping is off).
    fn motion_for_compensation(&self, o_hat: &Tensor) -> Tensor {
        if self.cfg.deformable {
            o_hat.clone()
        } else {
            o_hat.map(|v| (v * MOTION_SCALE).round() / MOTION_SCALE)
        }
    }

    /// Decodes one P frame given the reference *features* `F̂_{t−1}` and
    /// the two latent payloads; returns the reconstructed features `F̂_t`
    /// and the pixel frame. Shared by encoder (closed loop) and decoder so
    /// both stay bit-identical.
    ///
    /// Following FVC [5] ("all components operate within the feature
    /// space"), the decoder's reference is the feature tensor itself —
    /// re-extracting features from decoded pixels every frame would
    /// compound the feature↔pixel roundtrip error across the GOP.
    /// The two halves of P-frame reconstruction are independent until the
    /// final `F̄_t + R̂_t` sum, so they run as whole-module parallel work
    /// on [`ExecCtx::join`] — the coarse grain that actually fills the
    /// pool on small frames, where per-layer row/tile fan-out is gated
    /// off. Each branch is deterministic on its own, so the join changes
    /// nothing about bit-exactness across thread counts.
    fn reconstruct_p(
        &self,
        f_ref: &Tensor,
        motion_payload: &[u8],
        residual_payload: &[u8],
        rate: RatePoint,
    ) -> Result<(Tensor, Tensor), CtvcError> {
        let (_, _, h2, w2) = f_ref.shape().dims();
        let latent_shape = Shape::new(1, self.cfg.n, h2 / 8, w2 / 8);
        let (f_bar, r_hat) = self.exec.join(
            || -> Result<Tensor, CtvcError> {
                let zm = self.decode_latent(
                    motion_payload,
                    latent_shape,
                    &self.motion_ae,
                    rate.latent_step(),
                )?;
                let o_hat = self.motion_ae.synthesis.forward_ctx(&zm, &self.exec)?;
                let o_mc = self.motion_for_compensation(&o_hat);
                Ok(self.comp.forward_ctx(f_ref, &o_mc, &self.exec)?)
            },
            || -> Result<Tensor, CtvcError> {
                let zr = self.decode_latent(
                    residual_payload,
                    latent_shape,
                    &self.residual_ae,
                    rate.latent_step(),
                )?;
                Ok(self.residual_ae.synthesis.forward_ctx(&zr, &self.exec)?)
            },
        );
        let f_hat = f_bar?.add(&r_hat?)?;
        let px = self
            .fr
            .forward_ctx(&f_hat, &self.exec)?
            .map(|v| v.clamp(0.0, 1.0));
        Ok((f_hat, px))
    }

    /// Decodes the intra frame from its payload, returning reconstructed
    /// features and pixels.
    fn reconstruct_intra(
        &self,
        payload: &[u8],
        w: usize,
        h: usize,
        rate: RatePoint,
    ) -> Result<(Tensor, Tensor), CtvcError> {
        let shape = Shape::new(1, self.cfg.n, h / 2, w / 2);
        let symbols = latent::decode_intra_payload(payload, shape)?;
        let f_hat = latent::dequantize(&symbols, shape, rate.intra_step(), None)?;
        let px = self
            .fr
            .forward_ctx(&f_hat, &self.exec)?
            .map(|v| v.clamp(0.0, 1.0));
        Ok((f_hat, px))
    }

    /// Opens a streaming encoder session under the given rate-control
    /// mode — a fixed [`RatePoint`] converts via `Into`, or pass a
    /// [`RateMode`] for the closed-loop / external-controller modes.
    ///
    /// The first pushed frame fixes the stream resolution and is coded
    /// intra; later frames are predicted unless
    /// [`restart_gop`](nvc_video::EncoderSession::restart_gop) is
    /// called.
    pub fn start_encode(&self, mode: impl Into<RateMode<RatePoint>>) -> CtvcEncoderSession<'_> {
        CtvcEncoderSession {
            codec: self,
            control: SessionRateControl::new(mode.into()),
            wire_rate: None,
            join_headers: false,
            dims: None,
            reference_f: None,
            next_index: 0,
            gop_position: 0,
            bytes_per_frame: Vec::new(),
            bits_per_frame: Vec::new(),
            frame_types: Vec::new(),
            rate_per_frame: Vec::new(),
            total_bytes: 0,
            last_recon: None,
        }
    }

    /// Opens a streaming decoder session. Stream geometry and rate are
    /// read from the first packet's embedded header.
    pub fn start_decode(&self) -> CtvcDecoderSession<'_> {
        CtvcDecoderSession {
            codec: self,
            stream: None,
            reference_f: None,
            next_index: 0,
            decoded: 0,
        }
    }

    /// Encodes a sequence at the given rate point — a thin wrapper that
    /// pushes every frame through a [`CtvcEncoderSession`].
    ///
    /// # Errors
    ///
    /// Returns [`CtvcError::BadInput`] unless both dimensions are
    /// multiples of 16.
    pub fn encode(&self, seq: &Sequence, rate: RatePoint) -> Result<CtvcCoded, CtvcError> {
        let coded = nvc_video::codec::encode_sequence(self, seq, rate)?;
        let bitstream = coded.to_bytes();
        Ok(CtvcCoded {
            bitstream,
            decoded: coded.decoded.renamed(format!("{}-{rate}", self.cfg.name)),
            bpp: coded.stats.bpp(seq.pixels_per_frame()),
            bytes_per_frame: coded.stats.bytes_per_frame,
            total_bytes: coded.stats.total_bytes,
        })
    }

    /// Decodes a packetized bitstream produced by [`encode`](Self::encode)
    /// (or by serializing session packets) with a codec built from the
    /// same configuration — a thin wrapper over [`CtvcDecoderSession`].
    ///
    /// # Errors
    ///
    /// Returns [`CtvcError::BadInput`] on header/configuration mismatch
    /// and [`CtvcError::Coding`] on malformed packets or payloads.
    pub fn decode(&self, bitstream: &[u8]) -> Result<Sequence, CtvcError> {
        nvc_video::codec::decode_bitstream(self, bitstream)
    }
}

/// Geometry and *current* rate of an open decode stream: seeded by the
/// stream header, the rate then follows any in-band [`Section::Rate`]
/// switches.
#[derive(Debug, Clone, Copy)]
struct StreamInfo {
    w: usize,
    h: usize,
    rate: RatePoint,
}

/// Streaming encoder session for [`CtvcCodec`].
///
/// Carries the closed-loop reference *features* (FVC-style feature-space
/// state), the stream geometry, the GOP position and the rate-control
/// state explicitly, instead of recomputing them per whole-sequence
/// call.
#[derive(Debug)]
pub struct CtvcEncoderSession<'a> {
    codec: &'a CtvcCodec,
    control: SessionRateControl<RatePoint>,
    /// The rate the decoder currently assumes (stream header, then any
    /// in-band [`Section::Rate`] updates). `None` before the first frame.
    wire_rate: Option<RatePoint>,
    /// Joinable-stream mode: every intra packet carries the stream
    /// header, so decoders can join at any intra boundary. See
    /// [`EncoderSession::set_join_headers`](nvc_video::EncoderSession::set_join_headers).
    join_headers: bool,
    dims: Option<(usize, usize)>,
    reference_f: Option<Tensor>,
    next_index: u32,
    gop_position: u32,
    bytes_per_frame: Vec<usize>,
    bits_per_frame: Vec<u64>,
    frame_types: Vec<FrameKind>,
    rate_per_frame: Vec<u8>,
    total_bytes: usize,
    last_recon: Option<Frame>,
}

impl CtvcEncoderSession<'_> {
    /// The rate point the stream is currently coded at (the most recent
    /// frame's choice); `None` before the first frame.
    pub fn current_rate(&self) -> Option<RatePoint> {
        self.wire_rate
    }

    /// Frames since the last intra frame (0 = the upcoming frame starts
    /// a new GOP).
    pub fn gop_position(&self) -> u32 {
        self.gop_position
    }

    fn encode_intra(
        &mut self,
        x: &Tensor,
        w: usize,
        h: usize,
        rate: RatePoint,
    ) -> Result<Vec<u8>, CtvcError> {
        let codec = self.codec;
        let f = codec.fe.forward_ctx(x, &codec.exec)?;
        let symbols = latent::quantize(&f, rate.intra_step(), None)?;
        let payload = latent::encode_intra_payload(&symbols, f.shape())?;
        let (f_hat, rec) = codec.reconstruct_intra(&payload, w, h, rate)?;
        self.reference_f = Some(f_hat);
        self.last_recon = Some(Frame::from_tensor(rec)?);
        Ok(payload)
    }

    fn encode_predicted(
        &mut self,
        x: &Tensor,
        f_ref: Tensor,
        rate: RatePoint,
    ) -> Result<(Vec<u8>, Vec<u8>), CtvcError> {
        let codec = self.codec;
        let f_cur = codec.fe.forward_ctx(x, &codec.exec)?;
        // Functional motion estimation (block matching).
        let field = motion::estimate_motion_ctx(
            &motion::matching_plane(&f_cur),
            &motion::matching_plane(&f_ref),
            codec.cfg.me_block,
            codec.cfg.me_range,
            codec.cfg.half_pel_motion,
            &codec.exec,
        );
        // Embed into the N-channel motion tensor O_t.
        let (_, _, fh, fw) = f_cur.shape().dims();
        let n = codec.cfg.n;
        let o_t = Tensor::from_fn(Shape::new(1, n, fh, fw), |_, c, yy, xx| match c {
            0 => field.at(0, 0, yy, xx) / MOTION_SCALE,
            1 => field.at(0, 1, yy, xx) / MOTION_SCALE,
            _ => 0.0,
        });
        let zm = codec.motion_ae.analysis.forward_ctx(&o_t, &codec.exec)?;
        let (motion_payload, zm_hat) =
            codec.code_latent(&zm, &codec.motion_ae, rate.latent_step())?;
        // Closed loop: compensate with the *reconstructed* motion.
        let o_hat = codec
            .motion_ae
            .synthesis
            .forward_ctx(&zm_hat, &codec.exec)?;
        let o_mc = codec.motion_for_compensation(&o_hat);
        let f_bar = codec.comp.forward_ctx(&f_ref, &o_mc, &codec.exec)?;
        let r_t = f_cur.sub(&f_bar)?;
        let zr = codec.residual_ae.analysis.forward_ctx(&r_t, &codec.exec)?;
        let (residual_payload, _zr_hat) =
            codec.code_latent(&zr, &codec.residual_ae, rate.latent_step())?;
        // Reconstruct exactly like the decoder will.
        let (f_hat, rec) = codec.reconstruct_p(&f_ref, &motion_payload, &residual_payload, rate)?;
        self.reference_f = Some(f_hat);
        self.last_recon = Some(Frame::from_tensor(rec)?);
        Ok((motion_payload, residual_payload))
    }
}

impl EncoderSessionTrait for CtvcEncoderSession<'_> {
    type Error = CtvcError;
    type Rate = RatePoint;

    fn push_frame(&mut self, frame: &Frame) -> Result<Packet, CtvcError> {
        let _span = codec_metrics().encode_frame_us.time();
        let (w, h) = (frame.width(), frame.height());
        match self.dims {
            None => {
                self.codec.check_dims(w, h)?;
                self.dims = Some((w, h));
            }
            Some(dims) if dims != (w, h) => {
                return Err(CtvcError::BadInput(format!(
                    "frame {w}x{h} does not match stream {}x{}",
                    dims.0, dims.1
                )));
            }
            Some(_) => {}
        }
        let intra = self.reference_f.is_none();
        let rate = self.control.pick(u64::from(self.next_index), intra, w * h);
        let mut sections = SectionWriter::new();
        if self.next_index == 0 || (self.join_headers && intra) {
            // Stream header rides in the first packet — and, in
            // joinable-stream mode, in every intra packet, so a decoder
            // can open the stream at any intra boundary. It carries the
            // frame's own rate, so no separate rate section is needed.
            let mut header = BitWriter::new();
            header.write_bits(w as u32, 16);
            header.write_bits(h as u32, 16);
            header.write_bits(self.codec.cfg.n as u32, 16);
            header.write_bits(u32::from(rate.index()), 8);
            header.write_bit(self.codec.cfg.attention);
            header.write_bit(self.codec.cfg.deformable);
            sections.push(Section::SideInfo, header.finish());
        } else if self.wire_rate != Some(rate) {
            // In-band rate switch: signaled only when the rate changes,
            // so fixed-rate streams stay byte-identical to the legacy
            // format. Legal mid-GOP — the reference chain is untouched.
            sections.push(Section::Rate, vec![rate.index()]);
        }
        self.wire_rate = Some(rate);
        let x = frame.tensor();
        let kind = match self.reference_f.take() {
            None => {
                let payload = self.encode_intra(x, w, h, rate)?;
                self.bytes_per_frame.push(payload.len());
                sections.push(Section::Intra, payload);
                self.gop_position = 0;
                FrameKind::Intra
            }
            Some(f_ref) => {
                let (motion_payload, residual_payload) = self.encode_predicted(x, f_ref, rate)?;
                self.bytes_per_frame
                    .push(motion_payload.len() + residual_payload.len());
                sections.push(Section::Motion, motion_payload);
                sections.push(Section::Residual, residual_payload);
                self.gop_position += 1;
                FrameKind::Predicted
            }
        };
        let packet = Packet::new(self.next_index, kind, sections.finish());
        self.total_bytes += packet.encoded_len();
        let bits = packet.encoded_len() as u64 * 8;
        codec_metrics().frame_bits.record(bits);
        self.bits_per_frame.push(bits);
        self.frame_types.push(kind);
        self.rate_per_frame.push(rate.index());
        self.control.observe(RateOutcome {
            frame_index: u64::from(self.next_index),
            intra: kind == FrameKind::Intra,
            pixels: w * h,
            bits,
            wire_rate: rate.index(),
        });
        self.next_index += 1;
        Ok(packet)
    }

    fn last_reconstruction(&self) -> Option<&Frame> {
        self.last_recon.as_ref()
    }

    fn frames_pushed(&self) -> usize {
        self.next_index as usize
    }

    fn restart_gop(&mut self) -> bool {
        self.reference_f = None;
        self.gop_position = 0;
        true
    }

    fn set_join_headers(&mut self, enabled: bool) -> bool {
        self.join_headers = enabled;
        true
    }

    fn last_rate(&self) -> Option<u8> {
        self.wire_rate.map(|r| r.index())
    }

    fn set_rate_mode(&mut self, mode: RateMode<RatePoint>) {
        self.control.retarget(mode);
    }

    fn finish(self) -> Result<StreamStats, CtvcError> {
        Ok(StreamStats {
            frames: self.next_index as usize,
            bytes_per_frame: self.bytes_per_frame,
            bits_per_frame: self.bits_per_frame,
            frame_types: self.frame_types,
            rate_per_frame: self.rate_per_frame,
            total_bytes: self.total_bytes,
        })
    }
}

/// Streaming decoder session for [`CtvcCodec`].
#[derive(Debug)]
pub struct CtvcDecoderSession<'a> {
    codec: &'a CtvcCodec,
    stream: Option<StreamInfo>,
    reference_f: Option<Tensor>,
    next_index: u32,
    decoded: usize,
}

impl CtvcDecoderSession<'_> {
    /// Parses a `SideInfo` stream-header section, validating the codec
    /// configuration it claims against this decoder's.
    fn parse_header(&self, payload: &[u8]) -> Result<StreamInfo, CtvcError> {
        let mut hr = BitReader::new(payload);
        let w = hr.read_bits(16)? as usize;
        let h = hr.read_bits(16)? as usize;
        let n = hr.read_bits(16)? as usize;
        let rate = RatePoint::new(hr.read_bits(8)? as u8);
        let attention = hr.read_bit()?;
        let deformable = hr.read_bit()?;
        let cfg = &self.codec.cfg;
        if n != cfg.n || attention != cfg.attention || deformable != cfg.deformable {
            return Err(CtvcError::BadInput(format!(
                "bitstream coded with N={n}, attention={attention}, \
                 deformable={deformable}; decoder configured as N={}, attention={}, \
                 deformable={}",
                cfg.n, cfg.attention, cfg.deformable
            )));
        }
        self.codec.check_dims(w, h)?;
        Ok(StreamInfo { w, h, rate })
    }
}

impl DecoderSessionTrait for CtvcDecoderSession<'_> {
    type Error = CtvcError;

    fn push_packet(&mut self, bytes: &[u8]) -> Result<Frame, CtvcError> {
        let _span = codec_metrics().decode_frame_us.time();
        let (packet, consumed) = Packet::from_bytes(bytes)?;
        if consumed != bytes.len() {
            return Err(CtvcError::BadInput(format!(
                "{} trailing bytes after packet",
                bytes.len() - consumed
            )));
        }
        if self.stream.is_some() && packet.frame_index != self.next_index {
            return Err(CtvcError::BadInput(format!(
                "expected frame {}, got packet for frame {}",
                self.next_index, packet.frame_index
            )));
        }
        let sections = read_sections(&packet.payload)?;
        let mut rest: &[(Section, Vec<u8>)] = &sections;
        if self.stream.is_none() {
            // Stream join: the first pushed packet — frame 0 of a plain
            // stream or, for joinable streams, any header-carrying
            // intra — must lead with the stream header, which also
            // seeds the frame-index sequence.
            let (first, tail) = rest
                .split_first()
                .ok_or_else(|| CtvcError::BadInput("first packet has no sections".into()))?;
            if first.0 != Section::SideInfo {
                return Err(CtvcError::BadInput("missing stream header".into()));
            }
            self.stream = Some(self.parse_header(&first.1)?);
            self.next_index = packet.frame_index;
            rest = tail;
        } else if packet.kind == FrameKind::Intra
            && matches!(rest.first(), Some((Section::SideInfo, _)))
        {
            // Joinable streams re-send the header on every intra; it
            // must agree with the open stream and carries the frame's
            // rate (no separate rate section).
            let (first, tail) = rest.split_first().expect("checked non-empty");
            let header = self.parse_header(&first.1)?;
            let open = self.stream.expect("stream open");
            if (header.w, header.h) != (open.w, open.h) {
                return Err(CtvcError::BadInput(format!(
                    "mid-stream header {}x{} does not match open stream {}x{}",
                    header.w, header.h, open.w, open.h
                )));
            }
            self.stream = Some(header);
            rest = tail;
        } else {
            // An in-band rate switch may lead the packet's sections.
            let (switch, tail) =
                nvc_video::codec::take_rate_section(rest).map_err(CtvcError::BadInput)?;
            if let Some(index) = switch {
                let stream = self.stream.as_mut().expect("stream open");
                stream.rate = RatePoint::try_new(index).map_err(CtvcError::BadInput)?;
                rest = tail;
            }
        }
        let StreamInfo { w, h, rate } = self.stream.expect("stream open");
        let rec = match packet.kind {
            FrameKind::Intra => {
                let payload = match rest {
                    [(Section::Intra, payload)] => payload,
                    _ => {
                        return Err(CtvcError::BadInput(
                            "intra packet must carry exactly one intra section".into(),
                        ))
                    }
                };
                let (f_hat, rec) = self.codec.reconstruct_intra(payload, w, h, rate)?;
                self.reference_f = Some(f_hat);
                rec
            }
            FrameKind::Predicted => {
                let (motion, residual) = match rest {
                    [(Section::Motion, m), (Section::Residual, r)] => (m, r),
                    _ => {
                        return Err(CtvcError::BadInput(
                            "predicted packet must carry motion + residual sections".into(),
                        ))
                    }
                };
                let f_ref = self
                    .reference_f
                    .as_ref()
                    .ok_or_else(|| CtvcError::BadInput("P frame before intra".into()))?;
                let (f_hat, rec) = self.codec.reconstruct_p(f_ref, motion, residual, rate)?;
                self.reference_f = Some(f_hat);
                rec
            }
        };
        self.next_index += 1;
        self.decoded += 1;
        Ok(Frame::from_tensor(rec)?)
    }

    fn frames_decoded(&self) -> usize {
        self.decoded
    }

    fn last_rate(&self) -> Option<u8> {
        self.stream.map(|s| s.rate.index())
    }
}

impl VideoCodec for CtvcCodec {
    type Error = CtvcError;
    type Rate = RatePoint;
    type Encoder<'a> = CtvcEncoderSession<'a>;
    type Decoder<'a> = CtvcDecoderSession<'a>;

    fn codec_name(&self) -> &str {
        self.cfg.name
    }

    fn start_encode(&self, mode: RateMode<RatePoint>) -> Result<CtvcEncoderSession<'_>, CtvcError> {
        Ok(CtvcCodec::start_encode(self, mode))
    }

    fn start_decode(&self) -> CtvcDecoderSession<'_> {
        CtvcCodec::start_decode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_video::metrics::psnr_sequence;
    use nvc_video::synthetic::{SceneConfig, Synthesizer};

    fn seq(frames: usize) -> Sequence {
        Synthesizer::new(SceneConfig::uvg_like(48, 32, frames)).generate()
    }

    fn mean_psnr(orig: &Sequence, rec: &Sequence) -> f64 {
        let pairs: Vec<_> = orig.frames().iter().zip(rec.frames()).collect();
        psnr_sequence(&pairs.iter().map(|(a, b)| (*a, *b)).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_exact() {
        let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
        let s = seq(3);
        let coded = codec.encode(&s, RatePoint::new(1)).unwrap();
        let decoded = codec.decode(&coded.bitstream).unwrap();
        assert_eq!(decoded.frames().len(), 3);
        for (a, b) in decoded.frames().iter().zip(coded.decoded.frames()) {
            let d = a.tensor().sub(b.tensor()).unwrap().max_abs();
            assert!(d < 1e-6, "decoder drift {d}");
        }
    }

    #[test]
    fn rate_points_trade_rate_for_quality() {
        let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
        let s = seq(3);
        let coarse = codec.encode(&s, RatePoint::new(0)).unwrap();
        let fine = codec.encode(&s, RatePoint::new(2)).unwrap();
        assert!(fine.total_bytes > coarse.total_bytes);
        let p_coarse = mean_psnr(&s, &coarse.decoded);
        let p_fine = mean_psnr(&s, &fine.decoded);
        assert!(
            p_fine > p_coarse,
            "finer rate point must improve quality: {p_fine:.2} vs {p_coarse:.2}"
        );
    }

    #[test]
    fn decoder_rejects_mismatched_config() {
        let enc = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
        let s = seq(2);
        let coded = enc.encode(&s, RatePoint::new(1)).unwrap();
        let dec = CtvcCodec::new(CtvcConfig::fvc_like(8)).unwrap();
        assert!(dec.decode(&coded.bitstream).is_err());
        assert!(enc.decode(&[]).is_err());
    }

    #[test]
    fn rejects_bad_resolutions() {
        let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
        let bad = Synthesizer::new(SceneConfig::uvg_like(50, 34, 2)).generate();
        assert!(codec.encode(&bad, RatePoint::new(1)).is_err());
    }

    #[test]
    fn variants_all_roundtrip() {
        let s = seq(2);
        for cfg in [
            CtvcConfig::ctvc_fxp(8),
            CtvcConfig::fvc_like(8),
            CtvcConfig::dvc_like(8),
        ] {
            let name = cfg.name;
            let codec = CtvcCodec::new(cfg).unwrap();
            let coded = codec.encode(&s, RatePoint::new(1)).unwrap();
            let decoded = codec.decode(&coded.bitstream).unwrap();
            for (a, b) in decoded.frames().iter().zip(coded.decoded.frames()) {
                let d = a.tensor().sub(b.tensor()).unwrap().max_abs();
                assert!(d < 1e-6, "{name}: decoder drift {d}");
            }
            let p = mean_psnr(&s, &coded.decoded);
            assert!(p > 20.0, "{name}: implausibly low quality {p:.2} dB");
        }
    }

    #[test]
    fn streaming_decode_is_bit_exact_with_one_shot() {
        use nvc_video::codec::stream_roundtrip;
        let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
        let s = seq(4);
        // Session path: encode to packets, decode packet-by-packet.
        let (coded, drift) = stream_roundtrip(&codec, &s, RatePoint::new(1)).unwrap();
        assert_eq!(
            drift, 0.0,
            "streaming decode must match the closed loop exactly"
        );
        assert_eq!(coded.stats.bits_per_frame.len(), coded.stats.frames);
        assert_eq!(
            coded.stats.bits_per_frame.iter().sum::<u64>(),
            8 * coded.stats.total_bytes as u64,
            "per-frame bit counts must add up to the serialized stream"
        );
        // One-shot path over the same packets.
        let one_shot = codec.decode(&coded.to_bytes()).unwrap();
        for (a, b) in one_shot.frames().iter().zip(coded.decoded.frames()) {
            assert_eq!(
                a.tensor().as_slice(),
                b.tensor().as_slice(),
                "one-shot decode must be bit-exact with streaming"
            );
        }
    }

    #[test]
    fn encoder_session_tracks_gop_and_restarts() {
        use nvc_video::codec::{DecoderSession as _, EncoderSession as _};
        let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
        let s = seq(4);
        let mut enc = codec.start_encode(RatePoint::new(1));
        let mut packets = Vec::new();
        for (i, frame) in s.frames().iter().enumerate() {
            if i == 2 {
                enc.restart_gop(); // force a mid-stream intra refresh
            }
            packets.push(enc.push_frame(frame).unwrap());
            assert_eq!(enc.frames_pushed(), i + 1);
        }
        assert_eq!(packets[0].kind, FrameKind::Intra);
        assert_eq!(packets[1].kind, FrameKind::Predicted);
        assert_eq!(
            packets[2].kind,
            FrameKind::Intra,
            "restart_gop must force intra"
        );
        assert_eq!(packets[3].kind, FrameKind::Predicted);
        assert_eq!(enc.gop_position(), 1);
        // The refreshed stream still decodes end to end.
        let mut dec = codec.start_decode();
        for p in &packets {
            dec.push_packet(&p.to_bytes()).unwrap();
        }
        assert_eq!(dec.frames_decoded(), 4);
    }

    #[test]
    fn decoder_session_rejects_malformed_packets() {
        use nvc_video::codec::DecoderSession as _;
        let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
        let s = seq(3);
        let coded = nvc_video::codec::encode_sequence(&codec, &s, RatePoint::new(1)).unwrap();
        let bytes: Vec<Vec<u8>> = coded.packets.iter().map(|p| p.to_bytes()).collect();

        // Truncation at every prefix of the first packet.
        for cut in 0..bytes[0].len() {
            let mut dec = codec.start_decode();
            assert!(dec.push_packet(&bytes[0][..cut]).is_err(), "cut {cut}");
        }
        // Payload corruption is caught by the CRC.
        let mut corrupt = bytes[0].clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert!(codec.start_decode().push_packet(&corrupt).is_err());
        // Out-of-order delivery is rejected.
        let mut dec = codec.start_decode();
        assert!(
            dec.push_packet(&bytes[1]).is_err(),
            "P packet before intra/header"
        );
        let mut dec = codec.start_decode();
        dec.push_packet(&bytes[0]).unwrap();
        assert!(dec.push_packet(&bytes[2]).is_err(), "skipped frame index");
        // Trailing garbage after a whole packet is rejected.
        let mut padded = bytes[0].clone();
        padded.push(0);
        assert!(codec.start_decode().push_packet(&padded).is_err());
    }

    #[test]
    fn joinable_stream_decodes_from_any_intra() {
        use nvc_video::codec::{DecoderSession as _, EncoderSession as _};
        let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
        let s = seq(6);
        let mut enc = codec.start_encode(RatePoint::new(1));
        assert!(enc.set_join_headers(true), "CTVC supports joinable mode");
        let mut packets = Vec::new();
        for (i, frame) in s.frames().iter().enumerate() {
            if i == 3 {
                enc.restart_gop();
            }
            packets.push(enc.push_frame(frame).unwrap());
        }
        assert_eq!(packets[3].kind, FrameKind::Intra);

        // A from-start decoder consumes the whole stream…
        let mut full = codec.start_decode();
        let all: Vec<Frame> = packets
            .iter()
            .map(|p| full.push_packet(&p.to_bytes()).unwrap())
            .collect();
        // …while a late joiner opens at the mid-stream intra and must
        // reconstruct the tail bit-exactly from the same packet bytes.
        let mut late = codec.start_decode();
        for (i, p) in packets.iter().enumerate().skip(3) {
            let f = late.push_packet(&p.to_bytes()).unwrap();
            assert_eq!(
                f.tensor().as_slice(),
                all[i].tensor().as_slice(),
                "late join diverged at frame {i}"
            );
        }
        assert_eq!(late.frames_decoded(), 3);
        // Joining on a P packet is still rejected: no header to open on.
        let mut bad = codec.start_decode();
        assert!(bad.push_packet(&packets[4].to_bytes()).is_err());
    }

    #[test]
    fn join_headers_leave_predicted_packets_unchanged() {
        use nvc_video::codec::EncoderSession as _;
        let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
        let s = seq(4);
        let mut plain = codec.start_encode(RatePoint::new(1));
        let mut joinable = codec.start_encode(RatePoint::new(1));
        joinable.set_join_headers(true);
        for (i, frame) in s.frames().iter().enumerate() {
            if i == 2 {
                plain.restart_gop();
                joinable.restart_gop();
            }
            let a = plain.push_frame(frame).unwrap().to_bytes();
            let b = joinable.push_frame(frame).unwrap().to_bytes();
            if i == 2 {
                // The refreshed intra grows by exactly the re-sent header.
                assert!(b.len() > a.len(), "joinable intra must carry header");
            } else {
                assert_eq!(a, b, "frame {i} must be unaffected by join mode");
            }
        }
    }

    #[test]
    fn sparse_variant_stays_close_to_dense() {
        let s = seq(2);
        let dense = CtvcCodec::new(CtvcConfig::ctvc_fxp(8)).unwrap();
        let sparse = CtvcCodec::new(CtvcConfig::ctvc_sparse(8)).unwrap();
        let cd = dense.encode(&s, RatePoint::new(1)).unwrap();
        let cs = sparse.encode(&s, RatePoint::new(1)).unwrap();
        let pd = mean_psnr(&s, &cd.decoded);
        let ps = mean_psnr(&s, &cs.decoded);
        // Without the fine-tuning step the paper applies after pruning,
        // 50 % transform-domain sparsity costs a few dB; the ordering
        // FP ≥ FXP ≥ Sparse is what the reproduction preserves.
        assert!(
            pd - ps < 5.0 && ps > 25.0,
            "sparse ({ps:.2} dB) must stay usable next to dense ({pd:.2} dB)"
        );
    }
}
