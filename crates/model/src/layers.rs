//! Composite layers: numeric context, fast/direct operator wrappers,
//! residual blocks and the Swin attention machinery.

use crate::config::Precision;
use nvc_core::ExecCtx;
use nvc_fastalg::{FastConv2d, FastDeConv2d, Sparsity};
use nvc_quant::{fake_quantize_dynamic, QFormat};
use nvc_tensor::mat::{softmax_rows_inplace, Mat};
use nvc_tensor::ops::{relu, Conv2d, DeConv2d, Linear};
use nvc_tensor::{Shape, Tensor, TensorError};

/// Numeric execution context: applies the configured activation
/// quantization after every operator (FXP12 in the paper's deployment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumericCtx {
    act_bits: Option<u32>,
}

impl NumericCtx {
    /// Context for a precision setting.
    pub fn new(precision: Precision) -> Self {
        NumericCtx {
            act_bits: match precision {
                Precision::Fp32 => None,
                Precision::Fxp => Some(12),
            },
        }
    }

    /// Quantizes activations if the context is fixed-point.
    pub fn actq(&self, t: Tensor) -> Tensor {
        match self.act_bits {
            None => t,
            Some(bits) => fake_quantize_dynamic(&t, bits).map(|(q, _)| q).unwrap_or(t),
        }
    }
}

/// Quantizes an operator's weights in place for FXP deployment.
pub fn quantize_conv_weights(conv: &mut Conv2d, precision: Precision) {
    if precision == Precision::Fxp {
        let fmt = QFormat::weights16();
        for w in conv.weight_mut() {
            *w = fmt.roundtrip(*w);
        }
    }
}

/// Quantizes a deconvolution's weights in place for FXP deployment.
pub fn quantize_deconv_weights(deconv: &mut DeConv2d, precision: Precision) {
    if precision == Precision::Fxp {
        let fmt = QFormat::weights16();
        for w in deconv.weight_mut() {
            *w = fmt.roundtrip(*w);
        }
    }
}

/// A 3×3 stride-1 convolution that executes either directly or through the
/// (optionally pruned) Winograd pipeline — the software switch mirroring
/// the SFTC's reconfigurability.
#[derive(Debug, Clone)]
pub enum ConvOp {
    /// Direct execution.
    Direct(Conv2d),
    /// Winograd transform-domain execution (dense or pruned).
    Fast(FastConv2d),
}

impl ConvOp {
    /// Builds the operator: FXP weight quantization first, then (for
    /// eligible 3×3/s1/p1 convolutions with sparsity requested) the fast
    /// pruned path.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the fast path.
    pub fn build(
        mut conv: Conv2d,
        precision: Precision,
        sparsity: Option<f64>,
    ) -> Result<Self, TensorError> {
        quantize_conv_weights(&mut conv, precision);
        match sparsity {
            Some(rho) if conv.kernel() == 3 && conv.stride() == 1 && conv.padding() == 1 => Ok(
                ConvOp::Fast(FastConv2d::from_conv_pruned(&conv, Sparsity::new(rho)?)?),
            ),
            _ => Ok(ConvOp::Direct(conv)),
        }
    }

    /// Runs the convolution single-threaded.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(x, &ExecCtx::serial())
    }

    /// Runs the convolution on `exec`'s worker pool (bit-identical for
    /// every worker count).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward_ctx(&self, x: &Tensor, exec: &ExecCtx) -> Result<Tensor, TensorError> {
        match self {
            ConvOp::Direct(c) => c.forward_ctx(x, exec),
            ConvOp::Fast(c) => c.forward_ctx(x, exec),
        }
    }
}

/// A 4×4 stride-2 deconvolution executing directly or through the FTA
/// pipeline.
#[derive(Debug, Clone)]
pub enum DeconvOp {
    /// Direct execution.
    Direct(DeConv2d),
    /// FTA transform-domain execution (dense or pruned).
    Fast(FastDeConv2d),
}

impl DeconvOp {
    /// Builds the operator (see [`ConvOp::build`]).
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the fast path.
    pub fn build(
        mut deconv: DeConv2d,
        precision: Precision,
        sparsity: Option<f64>,
    ) -> Result<Self, TensorError> {
        quantize_deconv_weights(&mut deconv, precision);
        match sparsity {
            Some(rho) if deconv.kernel() == 4 && deconv.stride() == 2 && deconv.padding() == 1 => {
                Ok(DeconvOp::Fast(FastDeConv2d::from_deconv_pruned(
                    &deconv,
                    Sparsity::new(rho)?,
                )?))
            }
            _ => Ok(DeconvOp::Direct(deconv)),
        }
    }

    /// Runs the deconvolution single-threaded.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(x, &ExecCtx::serial())
    }

    /// Runs the deconvolution on `exec`'s worker pool (bit-identical for
    /// every worker count).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward_ctx(&self, x: &Tensor, exec: &ExecCtx) -> Result<Tensor, TensorError> {
        match self {
            DeconvOp::Direct(d) => d.forward_ctx(x, exec),
            DeconvOp::Fast(d) => d.forward_ctx(x, exec),
        }
    }
}

/// Residual block (paper Fig. 2f): `x + Conv(ReLU(Conv(ReLU(x))))`.
#[derive(Debug, Clone)]
pub struct ResBlock {
    conv1: ConvOp,
    conv2: ConvOp,
    ctx: NumericCtx,
}

impl ResBlock {
    /// Builds a residual block from two convolutions.
    ///
    /// # Errors
    ///
    /// Propagates operator construction errors.
    pub fn new(
        conv1: Conv2d,
        conv2: Conv2d,
        precision: Precision,
        sparsity: Option<f64>,
    ) -> Result<Self, TensorError> {
        Ok(ResBlock {
            conv1: ConvOp::build(conv1, precision, sparsity)?,
            conv2: ConvOp::build(conv2, precision, sparsity)?,
            ctx: NumericCtx::new(precision),
        })
    }

    /// Near-identity block with seeded perturbations, the analytic stand-in
    /// for a trained refinement block.
    ///
    /// # Errors
    ///
    /// Propagates operator construction errors.
    pub fn near_identity(
        c: usize,
        precision: Precision,
        sparsity: Option<f64>,
        seed: u64,
    ) -> Result<Self, TensorError> {
        // Perturbation scale trades "the block does something" against
        // the codec's reconstruction ceiling; these blocks sit in the
        // critical signal path of every frame.
        let conv1 = crate::weights::near_identity_conv(c, 0.001, seed)?;
        let conv2 = crate::weights::small_random_conv(c, c, 0.001, seed ^ 0x5a5a)?;
        ResBlock::new(conv1, conv2, precision, sparsity)
    }

    /// Runs the block single-threaded.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(x, &ExecCtx::serial())
    }

    /// Runs the block on `exec`'s worker pool.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward_ctx(&self, x: &Tensor, exec: &ExecCtx) -> Result<Tensor, TensorError> {
        let a = self.ctx.actq(self.conv1.forward_ctx(&relu(x), exec)?);
        let b = self.ctx.actq(self.conv2.forward_ctx(&relu(&a), exec)?);
        x.add(&b)
    }
}

/// Shift-window multi-head self-attention (SwinAtten of paper Fig. 3b).
///
/// The `V` and output projections are identity so channel pairing survives
/// the attention (see crate docs); `Q`/`K` are seeded random projections
/// that shape the window attention pattern.
#[derive(Debug, Clone)]
pub struct SwinAttention {
    c: usize,
    window: usize,
    shift: usize,
    heads: usize,
    wq: Linear,
    wk: Linear,
}

impl SwinAttention {
    /// Creates the attention with `c` channels, window size `window`,
    /// cyclic shift `shift` and `heads` heads.
    ///
    /// # Errors
    ///
    /// Returns an error unless `heads` divides `c` and `shift < window`.
    pub fn new(
        c: usize,
        window: usize,
        shift: usize,
        heads: usize,
        seed: u64,
    ) -> Result<Self, TensorError> {
        if heads == 0 || !c.is_multiple_of(heads) {
            return Err(TensorError::invalid(format!(
                "heads {heads} must divide channels {c}"
            )));
        }
        if window == 0 || shift >= window {
            return Err(TensorError::invalid(format!(
                "shift {shift} must be < window {window}"
            )));
        }
        let scale = (1.0 / (c as f32)).sqrt();
        // Rows r and r + c/2 of the Q/K projections are identical, so the
        // per-head attention scores agree across heads and the ±channel
        // pairing of the Swin-AM input survives attention exactly.
        let head_sym = |seed: u64| -> Result<Mat, TensorError> {
            let half = c / 2;
            let base = nvc_tensor::init::randn_vec(half.max(1) * c, scale, seed);
            let mut data = vec![0.0_f32; c * c];
            for r in 0..c {
                let src = r % half.max(1);
                data[r * c..(r + 1) * c].copy_from_slice(&base[src * c..(src + 1) * c]);
            }
            Mat::from_vec(c, c, data)
        };
        let wq = Linear::new(head_sym(seed)?, vec![0.0; c])?;
        let wk = Linear::new(head_sym(seed ^ 0x1234)?, vec![0.0; c])?;
        Ok(SwinAttention {
            c,
            window,
            shift,
            heads,
            wq,
            wk,
        })
    }

    /// Window size `R`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Cyclic shift `Shf`.
    pub fn shift(&self) -> usize {
        self.shift
    }

    /// Head count `P`.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Runs windowed attention single-threaded; output shape equals input
    /// shape.
    ///
    /// # Errors
    ///
    /// Returns an error if the channel count differs from construction.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(x, &ExecCtx::serial())
    }

    /// Runs windowed attention, fanning windows across `exec`'s worker
    /// pool (VCT-style block parallelism: every window is independent).
    /// Per-window results land in disjoint chunks of a staging buffer,
    /// so the output is bit-identical for every worker count.
    ///
    /// # Errors
    ///
    /// Returns an error if the channel count differs from construction.
    pub fn forward_ctx(&self, x: &Tensor, exec: &ExecCtx) -> Result<Tensor, TensorError> {
        let (n, c, h, w) = x.shape().dims();
        if c != self.c {
            return Err(TensorError::incompatible(format!(
                "attention expects {} channels, got {c}",
                self.c
            )));
        }
        let r = self.window;
        // Pad to window multiples.
        let ph = h.div_ceil(r) * r;
        let pw = w.div_ceil(r) * r;
        let padded = x.pad_to(ph, pw)?;
        // Cyclic shift.
        let shifted = roll(&padded, self.shift as isize, self.shift as isize);
        let mut out = Tensor::zeros(shifted.shape());

        let d = self.c / self.heads;
        let inv_sqrt_d = 1.0 / (d as f32).sqrt();
        let t = r * r;
        let wins_x = pw / r;
        let windows = (ph / r) * wins_x;

        // Staging layout: [window][token][channel].
        let mut win_out = exec.scratch().take(windows * t * self.c);
        for nn in 0..n {
            if nn > 0 {
                win_out.fill(0.0);
            }
            // Work-size gated: tiny latent planes (a handful of windows)
            // run serially rather than paying worker spawn overhead.
            let attn_work = self.macs(h, w);
            exec.par_chunks_mut_gated(&mut win_out, t * self.c, attn_work, |widx, result| {
                let wy = (widx / wins_x) * r;
                let wx = (widx % wins_x) * r;
                // Gather window tokens: r² × c.
                let mut tokens = Mat::zeros(t, self.c);
                for ty in 0..r {
                    for tx in 0..r {
                        let row = &mut tokens.as_mut_slice()[(ty * r + tx) * self.c..][..self.c];
                        for (ch, v) in row.iter_mut().enumerate() {
                            *v = shifted.at(nn, ch, wy + ty, wx + tx);
                        }
                    }
                }
                let q = self.wq.forward(&tokens).expect("channel count validated");
                let k = self.wk.forward(&tokens).expect("channel count validated");
                let (q, k, tok) = (q.as_slice(), k.as_slice(), tokens.as_slice());
                // Per-head attention; V = identity(tokens).
                let mut scores = vec![0.0_f32; t * t];
                for head in 0..self.heads {
                    let c0 = head * d;
                    // scores = Qh Khᵀ / √d.
                    for i in 0..t {
                        let q_row = &q[i * self.c + c0..][..d];
                        for j in 0..t {
                            let k_row = &k[j * self.c + c0..][..d];
                            let mut acc = 0.0;
                            for (&a, &b) in q_row.iter().zip(k_row) {
                                acc += a * b;
                            }
                            scores[i * t + j] = acc * inv_sqrt_d;
                        }
                    }
                    softmax_rows_inplace(&mut scores, t);
                    for i in 0..t {
                        let attn_row = &scores[i * t..][..t];
                        let out_row = &mut result[i * self.c + c0..][..d];
                        for (j, &a) in attn_row.iter().enumerate() {
                            let tok_row = &tok[j * self.c + c0..][..d];
                            for (o, &v) in out_row.iter_mut().zip(tok_row) {
                                *o += a * v;
                            }
                        }
                    }
                }
            });
            // Scatter staged windows back into spatial layout.
            for widx in 0..windows {
                let wy = (widx / wins_x) * r;
                let wx = (widx % wins_x) * r;
                let result = &win_out[widx * t * self.c..][..t * self.c];
                for ty in 0..r {
                    for tx in 0..r {
                        let row = &result[(ty * r + tx) * self.c..][..self.c];
                        for (ch, &v) in row.iter().enumerate() {
                            *out.at_mut(nn, ch, wy + ty, wx + tx) = v;
                        }
                    }
                }
            }
        }
        exec.scratch().put(win_out);
        // Unshift and crop.
        let unshifted = roll(&out, -(self.shift as isize), -(self.shift as isize));
        unshifted.crop(h, w)
    }

    /// Multiply–accumulate count for an `h × w` input (projections +
    /// attention matrix + aggregation).
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        let r = self.window;
        let ph = h.div_ceil(r) * r;
        let pw = w.div_ceil(r) * r;
        let windows = (ph / r) * (pw / r);
        let t = (r * r) as u64;
        let c = self.c as u64;
        let d = (self.c / self.heads) as u64;
        // Q,K projections + P·(T²·d scores + T²·d aggregation).
        windows as u64 * (2 * t * c * c + self.heads as u64 * (2 * t * t * d))
    }
}

/// Cyclic roll of the spatial dimensions by `(dy, dx)` (negative = down/right).
fn roll(t: &Tensor, dy: isize, dx: isize) -> Tensor {
    let (n, c, h, w) = t.shape().dims();
    Tensor::from_fn(Shape::new(n, c, h, w), |nn, ch, y, x| {
        let sy = (y as isize + dy).rem_euclid(h as isize) as usize;
        let sx = (x as isize + dx).rem_euclid(w as isize) as usize;
        t.at(nn, ch, sy, sx)
    })
}

/// Swin-Transformer-based Attention Module (paper Fig. 3a).
///
/// Branch 1: SwinAtten → ResBlock → Conv(2N,1,1) → Sigmoid produces the
/// spatial-channel mask. Branch 2: stacked ResBlocks. Branch 3: identity.
/// `forward` composes them (`x + mask ⊙ branch2(x)`); `mask` exposes the
/// attention mask alone, which the codec uses as its backward-adaptive
/// quantization gain (see crate docs).
#[derive(Debug, Clone)]
pub struct SwinAm {
    attn: SwinAttention,
    // Branch-1 ResBlock is built for |·| extraction over (z, −z) pairs.
    abs_conv1: ConvOp,
    abs_conv2: ConvOp,
    mask_conv: Conv2d,
    branch2: Vec<ResBlock>,
    ctx: NumericCtx,
    half: usize,
}

impl SwinAm {
    /// Creates a Swin-AM over `c` channels (must be even: the module pairs
    /// channel `j` with `j + c/2`).
    ///
    /// # Errors
    ///
    /// Returns an error if `c` is odd or attention parameters are invalid.
    pub fn new(
        c: usize,
        window: usize,
        shift: usize,
        heads: usize,
        precision: Precision,
        sparsity: Option<f64>,
        seed: u64,
    ) -> Result<Self, TensorError> {
        if !c.is_multiple_of(2) {
            return Err(TensorError::invalid("Swin-AM channel count must be even"));
        }
        let half = c / 2;
        let attn = SwinAttention::new(c, window, shift, heads, seed)?;
        // Branch-1 ResBlock: conv1 = identity passthrough, conv2 sums the
        // (j, j+half) pair so that with paired ±input the ReLU'd halves
        // combine to |u|.
        let abs_conv1 = crate::weights::dirac_conv(c, c, |co| vec![(co, 1.0)])?;
        let abs_conv2 = crate::weights::dirac_conv(c, c, move |co| {
            let j = co % half;
            vec![(j, 2.0), (j + half, 2.0)]
        })?;
        // Mask head: 1×1 conv reading the |·| features with a negative
        // bias so flat regions map below 0.5.
        let mut mask_conv = Conv2d::from_fn(
            c,
            c,
            1,
            1,
            0,
            |co, ci, _, _| {
                if co == ci {
                    1.2
                } else {
                    0.0
                }
            },
        )?;
        for b in mask_conv.bias_mut() {
            *b = -0.9;
        }
        let branch2 = (0..3)
            .map(|i| ResBlock::near_identity(c, precision, sparsity, seed ^ (0xB2 + i as u64)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SwinAm {
            attn,
            abs_conv1: ConvOp::build(abs_conv1, precision, sparsity)?,
            abs_conv2: ConvOp::build(abs_conv2, precision, sparsity)?,
            mask_conv,
            branch2,
            ctx: NumericCtx::new(precision),
            half,
        })
    }

    /// The underlying attention.
    pub fn attention(&self) -> &SwinAttention {
        &self.attn
    }

    /// Computes the branch-1 attention mask in `(0, 1)`, same shape as the
    /// input, single-threaded.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn mask(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.mask_ctx(x, &ExecCtx::serial())
    }

    /// Computes the branch-1 attention mask on `exec`'s worker pool.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn mask_ctx(&self, x: &Tensor, exec: &ExecCtx) -> Result<Tensor, TensorError> {
        let u = self.ctx.actq(self.attn.forward_ctx(x, exec)?);
        // ResBlock with |·| pairing: u + conv2(ReLU(conv1(ReLU(u)))).
        let a = self.abs_conv1.forward_ctx(&relu(&u), exec)?;
        let b = self.abs_conv2.forward_ctx(&relu(&a), exec)?;
        let res = self.ctx.actq(u.add(&b)?);
        let logits = self.mask_conv.forward_ctx(&res, exec)?;
        Ok(nvc_tensor::ops::sigmoid(&logits))
    }

    /// Full Swin-AM composition: `x + mask(x) ⊙ branch2(x)`,
    /// single-threaded.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(x, &ExecCtx::serial())
    }

    /// Full Swin-AM composition on `exec`'s worker pool.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward_ctx(&self, x: &Tensor, exec: &ExecCtx) -> Result<Tensor, TensorError> {
        let mask = self.mask_ctx(x, exec)?;
        let mut f2 = x.clone();
        for rb in &self.branch2 {
            f2 = self.ctx.actq(rb.forward_ctx(&f2, exec)?);
        }
        // Branch-2 output enters as a *correction*; keep it residual-scaled
        // so the analytic network stays near-identity.
        let delta = f2.sub(x)?;
        x.add(&mask.hadamard(&delta)?)
    }

    /// Pairs channel `j` with `j + c/2` (used by the codec to build the
    /// ±latent input).
    pub fn half(&self) -> usize {
        self.half
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_fn(Shape::new(1, c, h, w), |_, ch, y, x| {
            0.3 * ((y as f32 * 0.7 + x as f32 * 0.5 + ch as f32).sin())
        })
    }

    #[test]
    fn resblock_is_near_identity() {
        let rb = ResBlock::near_identity(4, Precision::Fp32, None, 7).unwrap();
        let x = smooth(4, 8, 8);
        let y = rb.forward(&x).unwrap();
        assert_eq!(y.shape(), x.shape());
        let rel = y.sub(&x).unwrap().max_abs() / x.max_abs();
        assert!(rel < 0.3, "{rel}");
        assert!(rel > 0.0, "block must not be a pure no-op");
    }

    #[test]
    fn attention_preserves_shape_and_pairing() {
        let c = 8;
        let attn = SwinAttention::new(c, 3, 0, 2, 11).unwrap();
        // Paired input: ch j+4 = -ch j.
        let base = smooth(4, 7, 5);
        let x = Tensor::from_fn(Shape::new(1, c, 7, 5), |_, ch, y, xx| {
            let v = base.at(0, ch % 4, y, xx);
            if ch < 4 {
                v
            } else {
                -v
            }
        });
        let y = attn.forward(&x).unwrap();
        assert_eq!(y.shape(), x.shape());
        // Identity V preserves the ± pairing exactly.
        for ch in 0..4 {
            for yy in 0..7 {
                for xx in 0..5 {
                    let d = (y.at(0, ch, yy, xx) + y.at(0, ch + 4, yy, xx)).abs();
                    assert!(d < 1e-4, "pairing broken at ({ch},{yy},{xx}): {d}");
                }
            }
        }
    }

    #[test]
    fn attention_output_is_window_convex_combination() {
        // With softmax weights, each output is a convex combination of
        // window inputs: bounded by window min/max. Use shift 0 and an
        // exact multiple of the window so windows are clean.
        let attn = SwinAttention::new(4, 3, 0, 2, 3).unwrap();
        let x = smooth(4, 6, 6);
        let y = attn.forward(&x).unwrap();
        for ch in 0..4 {
            for wy in (0..6).step_by(3) {
                for wx in (0..6).step_by(3) {
                    let mut lo = f32::INFINITY;
                    let mut hi = f32::NEG_INFINITY;
                    for ty in 0..3 {
                        for tx in 0..3 {
                            let v = x.at(0, ch, wy + ty, wx + tx);
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                    }
                    for ty in 0..3 {
                        for tx in 0..3 {
                            let v = y.at(0, ch, wy + ty, wx + tx);
                            assert!(
                                v >= lo - 1e-4 && v <= hi + 1e-4,
                                "({ch},{},{}) out of hull: {v} not in [{lo},{hi}]",
                                wy + ty,
                                wx + tx
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn shifted_attention_differs_from_unshifted() {
        let a0 = SwinAttention::new(4, 3, 0, 2, 5).unwrap();
        let a2 = SwinAttention::new(4, 3, 2, 2, 5).unwrap();
        let x = smooth(4, 9, 9);
        let y0 = a0.forward(&x).unwrap();
        let y2 = a2.forward(&x).unwrap();
        assert!(
            y0.sub(&y2).unwrap().max_abs() > 1e-4,
            "shift must change windows"
        );
    }

    #[test]
    fn swin_am_mask_tracks_activity() {
        let am = SwinAm::new(8, 3, 0, 2, Precision::Fp32, None, 9).unwrap();
        // Active region: strong ± pair in the left half, zeros right.
        let x = Tensor::from_fn(Shape::new(1, 8, 6, 12), |_, ch, _, xx| {
            let v = if xx < 6 { 0.8 } else { 0.0 };
            match ch {
                0..=3 => v,
                _ => -v,
            }
        });
        let mask = am.mask(&x).unwrap();
        let mut active = 0.0;
        let mut flat = 0.0;
        for y in 0..6 {
            for ch in 0..8 {
                active += mask.at(0, ch, y, 1);
                flat += mask.at(0, ch, y, 10);
            }
        }
        assert!(
            active > flat + 1.0,
            "mask must be higher in active regions: {active} vs {flat}"
        );
        // Masks stay in (0, 1).
        for v in mask.as_slice() {
            assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn swin_am_forward_is_gentle() {
        let am = SwinAm::new(8, 3, 2, 2, Precision::Fp32, None, 13).unwrap();
        let x = smooth(8, 9, 9);
        let y = am.forward(&x).unwrap();
        assert_eq!(y.shape(), x.shape());
        let rel = y.sub(&x).unwrap().max_abs() / x.max_abs();
        assert!(rel < 0.5, "Swin-AM must perturb, not destroy: {rel}");
    }

    #[test]
    fn validation() {
        assert!(SwinAttention::new(8, 3, 3, 2, 0).is_err()); // shift >= window
        assert!(SwinAttention::new(8, 3, 0, 3, 0).is_err()); // heads ∤ c
        assert!(SwinAttention::new(8, 0, 0, 2, 0).is_err());
        assert!(SwinAm::new(7, 3, 0, 1, Precision::Fp32, None, 0).is_err());
    }

    #[test]
    fn fxp_context_quantizes() {
        let ctx = NumericCtx::new(Precision::Fxp);
        let x = smooth(2, 4, 4);
        let q = ctx.actq(x.clone());
        assert!(q.sub(&x).unwrap().max_abs() > 0.0);
        let ctx_fp = NumericCtx::new(Precision::Fp32);
        assert_eq!(ctx_fp.actq(x.clone()), x);
    }
}
