//! CTVC-Net — the CNN-Transformer hybrid neural video codec of the paper
//! (§III), implemented as an inference-only network with analytically
//! constructed weights.
//!
//! # Topology (faithful to paper Fig. 2/3)
//!
//! * **Feature extraction** (Fig. 2a): `Conv(N,3,1) → MaxPool(2) →
//!   ResBlock(N,3)`, pixel domain → `N × H/2 × W/2` features.
//! * **Frame reconstruction** (Fig. 2b): `ResBlock(N,3) → DeConv(3,4,2)`.
//! * **Motion estimation** (Fig. 2c): `Conv(2N,3,1) → Conv(N,3,1)` over
//!   concatenated features.
//! * **Deformable compensation** (Fig. 2d): offset `Conv(N,3,1)` +
//!   `DfConv(N,3,1,G=2)` + two refinement convs with a skip.
//! * **Motion/residual compression** (Fig. 2e): analysis = three
//!   `Conv(2N,3,2)` stages with ResBlocks and two **Swin-AM** attention
//!   modules; synthesis = three `ResBlock + DeConv(N,4,2)` stages.
//! * **ResBlock** (Fig. 2f): `x + Conv(ReLU(Conv(ReLU(x))))`.
//!
//! # Substitutions (recorded in `DESIGN.md`)
//!
//! With no training loop available, "learned" weights are replaced by
//! analytic constructions that make the network a *working* codec:
//! polyphase ±identity + blur kernels in feature extraction, bilinear
//! synthesis kernels, anti-aliased pyramid kernels in the analysis
//! transforms, Dirac warping kernels in the deformable compensation, and
//! near-identity residual blocks. Motion is estimated functionally by
//! hierarchical block matching (the paper's ME CNN runs as a compute
//! shell). The Swin-AM attention modules drive a **backward-adaptive
//! quantization gain**: the mask computed from the latent modulates the
//! quantizer step, and the decoder reconstructs the same mask from the
//! dequantized latent — the only functionally meaningful reading of an
//! encoder-side attention mask under fixed weights.
//!
//! # Variants
//!
//! [`CtvcConfig`] presets give every row of the paper's Table I ladder:
//! `ctvc_fp`, `ctvc_fxp` (FXP16 weights / FXP12 activations), and
//! `ctvc_sparse` (50 % transform-domain pruning executed through the
//! Winograd/FTA fast operators), plus `fvc_like` (no attention) and
//! `dvc_like` (no attention, no deformable warp, full-pel motion).
//!
//! # Example
//!
//! ```no_run
//! use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
//! use nvc_video::synthetic::{SceneConfig, Synthesizer};
//!
//! # fn main() -> Result<(), nvc_model::CtvcError> {
//! let seq = Synthesizer::new(SceneConfig::uvg_like(64, 48, 3)).generate();
//! let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(12))?;
//! let coded = codec.encode(&seq, RatePoint::new(1))?;
//! let decoded = codec.decode(&coded.bitstream)?;
//! assert_eq!(decoded.frames().len(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod codec;
mod config;
pub mod graph;
mod latent;
mod layers;
mod modules;
pub mod motion;
mod weights;

pub use codec::{CtvcCodec, CtvcCoded, CtvcDecoderSession, CtvcEncoderSession, CtvcError};
pub use config::{CtvcConfig, Precision, RatePoint};
pub use graph::{decoder_graph, LayerDesc, LayerKind};
pub use layers::{ConvOp, DeconvOp, ResBlock, SwinAm, SwinAttention};
pub use modules::{
    Analysis, CompressionAutoencoder, DeformableCompensation, FeatureExtractor, FrameReconstructor,
    MotionCnn, Synthesis,
};
