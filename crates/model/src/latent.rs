//! Latent quantization and entropy coding.
//!
//! Latents are quantized with a uniform step, optionally modulated by the
//! Swin-AM attention mask (backward-adaptive gain, see crate docs), and
//! range-coded under per-channel Laplace models whose scales travel as
//! one side-info byte per channel.

use nvc_entropy::{CodingError, LaplaceModel, RangeDecoder, RangeEncoder};
use nvc_tensor::{Shape, Tensor, TensorError};

/// Mask evaluator: reconstructs the Swin-AM attention mask from a latent
/// (the decoder-reproducible half of the backward-adaptive gain).
pub type MaskFn<'a> = dyn Fn(&Tensor) -> Result<Tensor, TensorError> + 'a;

/// Largest coded symbol magnitude; finer values saturate (adds a little
/// distortion at extreme rate points instead of failing).
pub const MAX_SYM: i32 = 1023;

/// Gain applied when no mask is available: the mask midpoint `1 + 0.5`.
pub const NEUTRAL_GAIN: f32 = 1.5;

fn scale_to_byte(b: f64) -> u8 {
    let idx = (b.max(1e-4).log2() * 16.0 + 128.0).round();
    idx.clamp(0.0, 255.0) as u8
}

fn byte_to_scale(idx: u8) -> f64 {
    2.0_f64.powf((idx as f64 - 128.0) / 16.0)
}

/// Quantizes a latent to integer symbols: `round(z · gain / step)` where
/// `gain = 1 + mask` (or [`NEUTRAL_GAIN`] without a mask).
///
/// # Errors
///
/// Returns an error if the mask shape differs from the latent shape.
pub fn quantize(z: &Tensor, step: f32, mask: Option<&Tensor>) -> Result<Vec<i32>, TensorError> {
    if let Some(m) = mask {
        if m.shape() != z.shape() {
            return Err(TensorError::ShapeMismatch {
                left: z.shape().dims(),
                right: m.shape().dims(),
            });
        }
    }
    let symbols = z
        .as_slice()
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let gain = match mask {
                Some(m) => 1.0 + m.as_slice()[i],
                None => NEUTRAL_GAIN,
            };
            let s = (v * gain / step).round() as i32;
            s.clamp(-MAX_SYM, MAX_SYM)
        })
        .collect();
    Ok(symbols)
}

/// Reconstructs a latent from symbols. With a `mask_fn`, performs the
/// backward-adaptive iteration: provisional reconstruction at the neutral
/// gain, mask evaluation, final reconstruction at `1 + mask`.
///
/// # Errors
///
/// Propagates errors from `mask_fn`.
pub fn dequantize(
    symbols: &[i32],
    shape: Shape,
    step: f32,
    mask_fn: Option<&MaskFn<'_>>,
) -> Result<Tensor, TensorError> {
    let raw: Vec<f32> = symbols.iter().map(|&s| s as f32 * step).collect();
    match mask_fn {
        None => Tensor::from_vec(shape, raw.iter().map(|v| v / NEUTRAL_GAIN).collect()),
        Some(f) => {
            let z0 = Tensor::from_vec(shape, raw.iter().map(|v| v / NEUTRAL_GAIN).collect())?;
            let mask = f(&z0)?;
            let data = raw
                .iter()
                .zip(mask.as_slice())
                .map(|(&v, &m)| v / (1.0 + m))
                .collect();
            Tensor::from_vec(shape, data)
        }
    }
}

/// Entropy-encodes symbols of an `N × h × w` latent: per-channel Laplace
/// scale bytes followed by the range-coded payload.
///
/// # Errors
///
/// Returns an error if a Laplace model cannot be built (never happens for
/// in-range scales).
pub fn encode_payload(symbols: &[i32], shape: Shape) -> Result<Vec<u8>, CodingError> {
    let (_, c, h, w) = shape.dims();
    let plane = h * w;
    let mut bytes = Vec::with_capacity(c + symbols.len() / 4);
    let mut models = Vec::with_capacity(c);
    for ch in 0..c {
        let s = &symbols[ch * plane..(ch + 1) * plane];
        let mean_abs =
            s.iter().map(|&v| v.unsigned_abs() as f64).sum::<f64>() / plane.max(1) as f64;
        let idx = scale_to_byte(mean_abs.max(0.05));
        bytes.push(idx);
        models.push(LaplaceModel::new(byte_to_scale(idx), MAX_SYM)?);
    }
    let mut rc = RangeEncoder::new();
    for ch in 0..c {
        let model = &models[ch];
        for &s in &symbols[ch * plane..(ch + 1) * plane] {
            rc.encode(&model.interval(s), model.total());
        }
    }
    bytes.extend_from_slice(&rc.finish());
    Ok(bytes)
}

/// Decodes a payload produced by [`encode_payload`] back into symbols.
///
/// # Errors
///
/// Returns an error on truncated input.
pub fn decode_payload(bytes: &[u8], shape: Shape) -> Result<Vec<i32>, CodingError> {
    let (_, c, h, w) = shape.dims();
    let plane = h * w;
    if bytes.len() < c {
        return Err(CodingError::UnexpectedEof);
    }
    let mut models = Vec::with_capacity(c);
    for &idx in &bytes[..c] {
        models.push(LaplaceModel::new(byte_to_scale(idx), MAX_SYM)?);
    }
    let mut rc = RangeDecoder::new(&bytes[c..]);
    let mut symbols = Vec::with_capacity(c * plane);
    for model in &models {
        for _ in 0..plane {
            let f = rc.decode_freq(model.total());
            let (v, iv) = model.lookup(f);
            rc.decode_update(&iv, model.total());
            symbols.push(v);
        }
    }
    Ok(symbols)
}

/// Entropy-encodes *intra feature* symbols with two reversible predictive
/// transforms before the Laplace coder: channels `3..6` are summed with
/// their `±` partners `0..3` (the pair `max + (−min)` difference is small
/// on smooth content), then every channel is horizontally DPCM-coded.
/// Cuts intra rate by several× relative to raw coding.
///
/// # Errors
///
/// Returns an error if a model cannot be built.
pub fn encode_intra_payload(symbols: &[i32], shape: Shape) -> Result<Vec<u8>, CodingError> {
    let transformed = intra_transform(symbols, shape, true);
    encode_wide(&transformed, shape)
}

/// Inverse of [`encode_intra_payload`].
///
/// # Errors
///
/// Returns an error on truncated input.
pub fn decode_intra_payload(bytes: &[u8], shape: Shape) -> Result<Vec<i32>, CodingError> {
    let transformed = decode_wide(bytes, shape)?;
    Ok(intra_transform(&transformed, shape, false))
}

/// LOCO-I / JPEG-LS median-edge-detection predictor from the left (`a`),
/// above (`b`) and above-left (`c`) reconstructed neighbours.
fn med_predict(a: i32, b: i32, c: i32) -> i32 {
    if c >= a.max(b) {
        a.min(b)
    } else if c <= a.min(b) {
        a.max(b)
    } else {
        a + b - c
    }
}

/// Pair-prediction + 2-D MED-predictive coding, forward (`true`) or
/// inverse.
fn intra_transform(symbols: &[i32], shape: Shape, forward: bool) -> Vec<i32> {
    let (_, c, h, w) = shape.dims();
    let plane = h * w;
    let mut out = symbols.to_vec();
    if forward {
        // Pair prediction first, then the spatial predictor.
        for ch in 3..c.min(6) {
            for i in 0..plane {
                out[ch * plane + i] += symbols[(ch - 3) * plane + i];
            }
        }
        let paired = out.clone();
        for ch in 0..c {
            let base = ch * plane;
            for y in 0..h {
                for x in 0..w {
                    let a = if x > 0 {
                        paired[base + y * w + x - 1]
                    } else {
                        0
                    };
                    let b = if y > 0 {
                        paired[base + (y - 1) * w + x]
                    } else {
                        0
                    };
                    let cc = if x > 0 && y > 0 {
                        paired[base + (y - 1) * w + x - 1]
                    } else {
                        0
                    };
                    out[base + y * w + x] = paired[base + y * w + x] - med_predict(a, b, cc);
                }
            }
        }
    } else {
        // Undo the spatial predictor in raster order, then pairs.
        for ch in 0..c {
            let base = ch * plane;
            for y in 0..h {
                for x in 0..w {
                    let a = if x > 0 { out[base + y * w + x - 1] } else { 0 };
                    let b = if y > 0 {
                        out[base + (y - 1) * w + x]
                    } else {
                        0
                    };
                    let cc = if x > 0 && y > 0 {
                        out[base + (y - 1) * w + x - 1]
                    } else {
                        0
                    };
                    out[base + y * w + x] += med_predict(a, b, cc);
                }
            }
        }
        for ch in 3..c.min(6) {
            for i in 0..plane {
                out[ch * plane + i] -= out[(ch - 3) * plane + i];
            }
        }
    }
    out
}

/// Wide-alphabet Laplace coding (DPCM differences span ±2·MAX_SYM).
fn encode_wide(symbols: &[i32], shape: Shape) -> Result<Vec<u8>, CodingError> {
    let (_, c, h, w) = shape.dims();
    let plane = h * w;
    let max_sym = 4 * MAX_SYM;
    let mut bytes = Vec::with_capacity(c + symbols.len() / 8);
    let mut models = Vec::with_capacity(c);
    for ch in 0..c {
        let s = &symbols[ch * plane..(ch + 1) * plane];
        let mean_abs =
            s.iter().map(|&v| v.unsigned_abs() as f64).sum::<f64>() / plane.max(1) as f64;
        let idx = scale_to_byte(mean_abs.max(0.05));
        bytes.push(idx);
        models.push(LaplaceModel::new(byte_to_scale(idx), max_sym)?);
    }
    let mut rc = RangeEncoder::new();
    for ch in 0..c {
        let model = &models[ch];
        for &s in &symbols[ch * plane..(ch + 1) * plane] {
            debug_assert!(s.abs() <= max_sym, "symbol {s} exceeds wide alphabet");
            rc.encode(&model.interval(s), model.total());
        }
    }
    bytes.extend_from_slice(&rc.finish());
    Ok(bytes)
}

fn decode_wide(bytes: &[u8], shape: Shape) -> Result<Vec<i32>, CodingError> {
    let (_, c, h, w) = shape.dims();
    let plane = h * w;
    let max_sym = 4 * MAX_SYM;
    if bytes.len() < c {
        return Err(CodingError::UnexpectedEof);
    }
    let mut models = Vec::with_capacity(c);
    for &idx in &bytes[..c] {
        models.push(LaplaceModel::new(byte_to_scale(idx), max_sym)?);
    }
    let mut rc = RangeDecoder::new(&bytes[c..]);
    let mut symbols = Vec::with_capacity(c * plane);
    for model in &models {
        for _ in 0..plane {
            let f = rc.decode_freq(model.total());
            let (v, iv) = model.lookup(f);
            rc.decode_update(&iv, model.total());
            symbols.push(v);
        }
    }
    Ok(symbols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latent(c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_fn(Shape::new(1, c, h, w), |_, ch, y, x| {
            0.4 * ((ch as f32 + 1.0) * (y as f32 * 0.7 + x as f32 * 0.3)).sin()
        })
    }

    #[test]
    fn symbols_roundtrip_through_payload() {
        let z = latent(4, 6, 5);
        let shape = z.shape();
        let symbols = quantize(&z, 0.05, None).unwrap();
        let bytes = encode_payload(&symbols, shape).unwrap();
        let back = decode_payload(&bytes, shape).unwrap();
        assert_eq!(symbols, back);
    }

    #[test]
    fn quantization_error_bounded_without_mask() {
        let z = latent(3, 4, 4);
        let step = 0.02;
        let symbols = quantize(&z, step, None).unwrap();
        let rec = dequantize(&symbols, z.shape(), step, None).unwrap();
        let err = rec.sub(&z).unwrap().max_abs();
        assert!(err <= step / NEUTRAL_GAIN / 2.0 + 1e-6, "err {err}");
    }

    #[test]
    fn finer_steps_cost_more_bits() {
        let z = latent(4, 8, 8);
        let coarse = encode_payload(&quantize(&z, 0.2, None).unwrap(), z.shape()).unwrap();
        let fine = encode_payload(&quantize(&z, 0.01, None).unwrap(), z.shape()).unwrap();
        assert!(
            fine.len() > coarse.len(),
            "{} vs {}",
            fine.len(),
            coarse.len()
        );
    }

    #[test]
    fn mask_roundtrip_error_is_second_order() {
        // A deterministic, smooth "mask function" standing in for the
        // Swin-AM mask: the decoder recomputes it from the provisional
        // reconstruction and the final error must stay close to the
        // no-mask bound.
        let z = latent(2, 6, 6);
        let step = 0.05;
        let mask_fn = |t: &Tensor| -> Result<Tensor, TensorError> {
            Ok(t.map(|v| 0.5 + 0.2 * (3.0 * v).tanh()))
        };
        let enc_mask = mask_fn(&z).unwrap();
        let symbols = quantize(&z, step, Some(&enc_mask)).unwrap();
        let rec = dequantize(&symbols, z.shape(), step, Some(&mask_fn)).unwrap();
        let err = rec.sub(&z).unwrap().max_abs();
        assert!(err < step, "masked roundtrip error {err} vs step {step}");
    }

    #[test]
    fn saturation_clamps_not_fails() {
        let z = Tensor::filled(Shape::new(1, 1, 2, 2), 100.0);
        let symbols = quantize(&z, 0.001, None).unwrap();
        assert!(symbols.iter().all(|&s| s == MAX_SYM));
    }

    #[test]
    fn scale_byte_roundtrip_is_monotone() {
        let mut prev = 0.0;
        for idx in (0..=255u8).step_by(16) {
            let b = byte_to_scale(idx);
            assert!(b > prev);
            prev = b;
            assert_eq!(scale_to_byte(b), idx);
        }
    }

    #[test]
    fn intra_payload_roundtrips_and_compresses() {
        // Smooth feature-like content with correlated ± channel pairs.
        let z = Tensor::from_fn(Shape::new(1, 8, 12, 16), |_, c, y, x| {
            let base = 0.5 + 0.3 * ((y as f32 * 0.2 + x as f32 * 0.15).sin());
            match c {
                0..=2 => base,
                3..=5 => -base + 0.02, // ≈ −pair with a small offset
                _ => 0.05 * ((c + y + x) as f32).sin(),
            }
        });
        let symbols = quantize(&z, 0.02, None).unwrap();
        let raw = encode_payload(&symbols, z.shape()).unwrap();
        let intra = encode_intra_payload(&symbols, z.shape()).unwrap();
        let back = decode_intra_payload(&intra, z.shape()).unwrap();
        assert_eq!(symbols, back, "intra coding must be lossless");
        assert!(
            intra.len() * 2 < raw.len() * 3,
            "predictive intra must compress: {} vs {} bytes",
            intra.len(),
            raw.len()
        );
    }

    #[test]
    fn intra_transform_is_involutive() {
        let shape = Shape::new(1, 7, 3, 5);
        let symbols: Vec<i32> = (0..7 * 15).map(|i| ((i * 37) % 200) - 100).collect();
        let fwd = intra_transform(&symbols, shape, true);
        let back = intra_transform(&fwd, shape, false);
        assert_eq!(symbols, back);
    }

    #[test]
    fn truncated_payload_is_detected() {
        let z = latent(3, 4, 4);
        let symbols = quantize(&z, 0.05, None).unwrap();
        let bytes = encode_payload(&symbols, z.shape()).unwrap();
        assert!(decode_payload(&bytes[..2], z.shape()).is_err());
    }
}
