//! Decoder layer-graph export: the workload description the NVCA hardware
//! simulator consumes.
//!
//! [`decoder_graph`] enumerates every layer the CTVC-Net *decoder* runs
//! per P frame — exactly the five modules of the paper's Fig. 9(b):
//! feature extraction (of the previous decoded frame), motion synthesis,
//! deformable compensation, residual synthesis and frame reconstruction —
//! with concrete shapes for a given output resolution.

use crate::config::CtvcConfig;

/// Operator class of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayerKind {
    /// Standard convolution (kernel, stride).
    Conv {
        /// Kernel size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Transposed convolution (kernel, stride).
    DeConv {
        /// Kernel size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Deformable convolution (kernel, groups).
    DfConv {
        /// Kernel size.
        k: usize,
        /// Deformable groups.
        groups: usize,
    },
    /// Windowed self-attention (window, heads).
    SwinAttention {
        /// Window size.
        window: usize,
        /// Head count.
        heads: usize,
    },
    /// Max pooling.
    Pool {
        /// Window/stride.
        k: usize,
    },
}

/// One decoder layer with concrete shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerDesc {
    /// Module the layer belongs to (Fig. 9(b) granularity).
    pub module: &'static str,
    /// Layer name within the module.
    pub name: String,
    /// Operator class.
    pub kind: LayerKind,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Input height.
    pub h_in: usize,
    /// Input width.
    pub w_in: usize,
    /// Output height.
    pub h_out: usize,
    /// Output width.
    pub w_out: usize,
}

impl LayerDesc {
    /// Multiply–accumulate count of the layer.
    pub fn macs(&self) -> u64 {
        match self.kind {
            LayerKind::Conv { k, .. } => {
                (self.c_in * self.c_out * k * k) as u64 * (self.h_out * self.w_out) as u64
            }
            LayerKind::DeConv { k, .. } => {
                (self.c_in * self.c_out * k * k) as u64 * (self.h_in * self.w_in) as u64
            }
            LayerKind::DfConv { k, .. } => {
                (self.c_in * self.c_out * k * k) as u64 * (self.h_out * self.w_out) as u64
            }
            LayerKind::SwinAttention { window, heads } => {
                let t = (window * window) as u64;
                let c = self.c_in as u64;
                let d = c / heads as u64;
                let windows = (self.h_in.div_ceil(window) * self.w_in.div_ceil(window)) as u64;
                windows * (2 * t * c * c + heads as u64 * 2 * t * t * d)
            }
            LayerKind::Pool { k } => (self.h_out * self.w_out * self.c_out * k * k) as u64,
        }
    }

    /// Whether the SFTC can execute this layer through a fast transform:
    /// `Some("winograd")` for 3×3/s1 convs, `Some("fta")` for 4×4/s2
    /// deconvs, `None` otherwise (DCC or scalar fallback).
    pub fn fast_algorithm(&self) -> Option<&'static str> {
        match self.kind {
            LayerKind::Conv { k: 3, stride: 1 } => Some("winograd"),
            LayerKind::DeConv { k: 4, stride: 2 } => Some("fta"),
            _ => None,
        }
    }

    /// Input activation volume in elements.
    pub fn input_elems(&self) -> u64 {
        (self.c_in * self.h_in * self.w_in) as u64
    }

    /// Output activation volume in elements.
    pub fn output_elems(&self) -> u64 {
        (self.c_out * self.h_out * self.w_out) as u64
    }

    /// Weight volume in elements.
    pub fn weight_elems(&self) -> u64 {
        match self.kind {
            LayerKind::Conv { k, .. }
            | LayerKind::DeConv { k, .. }
            | LayerKind::DfConv { k, .. } => (self.c_in * self.c_out * k * k) as u64,
            LayerKind::SwinAttention { .. } => (2 * self.c_in * self.c_in) as u64,
            LayerKind::Pool { .. } => 0,
        }
    }
}

#[allow(clippy::too_many_arguments)] // layer geometry is naturally 8 scalars
fn conv(
    module: &'static str,
    name: &str,
    c_in: usize,
    c_out: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
) -> LayerDesc {
    LayerDesc {
        module,
        name: name.to_string(),
        kind: LayerKind::Conv { k, stride },
        c_in,
        c_out,
        h_in: h,
        w_in: w,
        h_out: h / stride,
        w_out: w / stride,
    }
}

fn deconv(
    module: &'static str,
    name: &str,
    c_in: usize,
    c_out: usize,
    h: usize,
    w: usize,
) -> LayerDesc {
    LayerDesc {
        module,
        name: name.to_string(),
        kind: LayerKind::DeConv { k: 4, stride: 2 },
        c_in,
        c_out,
        h_in: h,
        w_in: w,
        h_out: h * 2,
        w_out: w * 2,
    }
}

fn resblock(
    out: &mut Vec<LayerDesc>,
    module: &'static str,
    prefix: &str,
    c: usize,
    h: usize,
    w: usize,
) {
    out.push(conv(module, &format!("{prefix}.conv1"), c, c, h, w, 3, 1));
    out.push(conv(module, &format!("{prefix}.conv2"), c, c, h, w, 3, 1));
}

fn synthesis(out: &mut Vec<LayerDesc>, module: &'static str, n: usize, h16: usize, w16: usize) {
    let mut h = h16;
    let mut w = w16;
    for stage in 0..3 {
        resblock(out, module, &format!("stage{stage}.res"), n, h, w);
        out.push(deconv(module, &format!("stage{stage}.up"), n, n, h, w));
        h *= 2;
        w *= 2;
    }
}

fn swin_am_mask(out: &mut Vec<LayerDesc>, module: &'static str, c2: usize, h: usize, w: usize) {
    out.push(LayerDesc {
        module,
        name: "swin_am.attn".to_string(),
        kind: LayerKind::SwinAttention {
            window: 3,
            heads: 2,
        },
        c_in: c2,
        c_out: c2,
        h_in: h,
        w_in: w,
        h_out: h,
        w_out: w,
    });
    resblock(out, module, "swin_am.res", c2, h, w);
    out.push(conv(module, "swin_am.mask", c2, c2, h, w, 1, 1));
}

/// Enumerates the decoder layer graph for one P frame at output
/// resolution `w × h` (must be multiples of 16).
///
/// # Panics
///
/// Panics if `h` or `w` is not a positive multiple of 16.
pub fn decoder_graph(cfg: &CtvcConfig, h: usize, w: usize) -> Vec<LayerDesc> {
    assert!(
        h > 0 && w > 0 && h.is_multiple_of(16) && w.is_multiple_of(16),
        "resolution must be a multiple of 16"
    );
    let n = cfg.n;
    let (h2, w2) = (h / 2, w / 2);
    let (h16, w16) = (h / 16, w / 16);
    let mut g = Vec::new();

    // 1. Feature extraction of the previous decoded frame (Fig. 2a).
    g.push(conv("feature_extraction", "conv1", 3, n, h, w, 3, 1));
    g.push(LayerDesc {
        module: "feature_extraction",
        name: "maxpool".to_string(),
        kind: LayerKind::Pool { k: 2 },
        c_in: n,
        c_out: n,
        h_in: h,
        w_in: w,
        h_out: h2,
        w_out: w2,
    });
    resblock(&mut g, "feature_extraction", "res", n, h2, w2);

    // 2. Motion synthesis (Fig. 2e right) + decoder-side Swin-AM mask.
    if cfg.attention {
        swin_am_mask(&mut g, "motion_synthesis", 2 * n, h16, w16);
    }
    synthesis(&mut g, "motion_synthesis", n, h16, w16);

    // 3. Deformable compensation (Fig. 2d).
    g.push(conv(
        "deformable_compensation",
        "offset",
        n,
        36,
        h2,
        w2,
        3,
        1,
    ));
    g.push(LayerDesc {
        module: "deformable_compensation",
        name: "dfconv".to_string(),
        kind: LayerKind::DfConv { k: 3, groups: 2 },
        c_in: n,
        c_out: n,
        h_in: h2,
        w_in: w2,
        h_out: h2,
        w_out: w2,
    });
    g.push(conv(
        "deformable_compensation",
        "refine1",
        n,
        n,
        h2,
        w2,
        3,
        1,
    ));
    g.push(conv(
        "deformable_compensation",
        "refine2",
        n,
        n,
        h2,
        w2,
        3,
        1,
    ));

    // 4. Residual synthesis.
    if cfg.attention {
        swin_am_mask(&mut g, "residual_synthesis", 2 * n, h16, w16);
    }
    synthesis(&mut g, "residual_synthesis", n, h16, w16);

    // 5. Frame reconstruction (Fig. 2b).
    resblock(&mut g, "frame_reconstruction", "res", n, h2, w2);
    g.push(deconv("frame_reconstruction", "up", n, 3, h2, w2));

    g
}

/// The five decoder module names in execution order (Fig. 9(b) x-axis).
pub const DECODER_MODULES: [&str; 5] = [
    "feature_extraction",
    "motion_synthesis",
    "deformable_compensation",
    "residual_synthesis",
    "frame_reconstruction",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_covers_all_modules() {
        let cfg = CtvcConfig::ctvc_sparse(36);
        let g = decoder_graph(&cfg, 1088, 1920);
        for m in DECODER_MODULES {
            assert!(g.iter().any(|l| l.module == m), "missing module {m}");
        }
        // All shapes are internally consistent.
        for l in &g {
            assert!(l.macs() > 0, "{}.{} has zero MACs", l.module, l.name);
            assert!(l.h_out > 0 && l.w_out > 0);
        }
    }

    #[test]
    fn fast_algorithm_classification() {
        let cfg = CtvcConfig::ctvc_sparse(36);
        let g = decoder_graph(&cfg, 64, 64);
        let wino = g
            .iter()
            .filter(|l| l.fast_algorithm() == Some("winograd"))
            .count();
        let fta = g
            .iter()
            .filter(|l| l.fast_algorithm() == Some("fta"))
            .count();
        assert!(
            wino >= 10,
            "expected many Winograd-eligible convs, got {wino}"
        );
        // 3 deconv stages per synthesis × 2 + frame reconstruction = 7.
        assert_eq!(fta, 7);
        // Pool / DfConv / attention are not fast-transformable.
        for l in &g {
            if matches!(l.kind, LayerKind::DfConv { .. } | LayerKind::Pool { .. }) {
                assert_eq!(l.fast_algorithm(), None);
            }
        }
    }

    #[test]
    fn macs_scale_with_resolution() {
        let cfg = CtvcConfig::ctvc_fp(36);
        let small: u64 = decoder_graph(&cfg, 64, 64).iter().map(|l| l.macs()).sum();
        let large: u64 = decoder_graph(&cfg, 128, 128).iter().map(|l| l.macs()).sum();
        let ratio = large as f64 / small as f64;
        assert!((3.0..5.0).contains(&ratio), "expected ~4x, got {ratio}");
    }

    #[test]
    fn attention_adds_decoder_layers() {
        let with = decoder_graph(&CtvcConfig::ctvc_fp(36), 64, 64).len();
        let without = decoder_graph(&CtvcConfig::fvc_like(36), 64, 64).len();
        assert!(with > without);
    }

    #[test]
    fn total_macs_at_1080p_are_plausible() {
        // The decoder at 1080p should land in the tens of GMACs — the
        // workload class the paper's 3.5 TOPS accelerator sustains at
        // 25 fps.
        let cfg = CtvcConfig::ctvc_sparse(36);
        let total: u64 = decoder_graph(&cfg, 1088, 1920)
            .iter()
            .map(|l| l.macs())
            .sum();
        let gmacs = total as f64 / 1e9;
        assert!(
            (5.0..200.0).contains(&gmacs),
            "decoder workload {gmacs:.1} GMAC outside plausible range"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_bad_resolution() {
        let _ = decoder_graph(&CtvcConfig::ctvc_fp(36), 100, 64);
    }
}
