use std::fmt;

/// Numeric precision of the deployed network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// 32-bit floating point (the paper's "CTVC-Net (FP)").
    Fp32,
    /// Fixed point: 16-bit weights, 12-bit activations (the paper's
    /// deployment precision, Table II "FXP 12-16").
    Fxp,
}

/// Rate point selecting the latent quantization step. Index 0 is the
/// coarsest (lowest rate); each step halves the quantizer step. Valid
/// indices are exactly the 4-point sweep `0..=3` ([`RatePoint::sweep`]):
/// the analytic weight construction is only calibrated over that range,
/// and finer steps would silently extrapolate `latent_step`/`intra_step`
/// into regimes the codec was never validated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatePoint(u8);

impl RatePoint {
    /// Highest valid rate index (the sweep is `0..=MAX_INDEX`).
    pub const MAX_INDEX: u8 = 3;

    /// Creates a rate point, clamping the index into the 4-point sweep.
    /// Use [`RatePoint::try_new`] to reject out-of-range indices instead.
    pub fn new(index: u8) -> Self {
        RatePoint(index.min(Self::MAX_INDEX))
    }

    /// Creates a rate point, validating the index against the sweep.
    ///
    /// # Errors
    ///
    /// Returns a description of the valid range for indices above
    /// [`RatePoint::MAX_INDEX`].
    pub fn try_new(index: u8) -> Result<Self, String> {
        if index > Self::MAX_INDEX {
            return Err(format!(
                "rate index {index} outside the calibrated sweep 0..={}",
                Self::MAX_INDEX
            ));
        }
        Ok(RatePoint(index))
    }

    /// The rate index.
    pub fn index(&self) -> u8 {
        self.0
    }

    /// Latent quantizer step for this rate point.
    pub fn latent_step(&self) -> f32 {
        0.08 * 0.5_f32.powi(self.0 as i32)
    }

    /// Quantizer step for intra-coded features (somewhat finer than inter
    /// latents, since the first frame anchors the whole GOP).
    pub fn intra_step(&self) -> f32 {
        self.latent_step() * 0.5
    }

    /// The standard four-point sweep used by the RD experiments.
    pub fn sweep() -> [RatePoint; 4] {
        [RatePoint(0), RatePoint(1), RatePoint(2), RatePoint(3)]
    }
}

impl fmt::Display for RatePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The 4-point sweep as a bitrate ladder: the wire byte is the rate
/// index itself, and the index already increases with bitrate, so
/// positions and indices coincide. Each step halves the quantizer step;
/// with the codec's Laplacian-ish latent statistics that grows the
/// coded bits by roughly 1.25× per index (measured on the synthetic
/// sweeps), not the 2× a uniform-source intuition would suggest.
impl nvc_video::RateParam for RatePoint {
    fn to_wire(self) -> u8 {
        self.0
    }

    fn from_wire(byte: u8) -> Result<Self, String> {
        RatePoint::try_new(byte)
    }

    fn position(self) -> u32 {
        u32::from(self.0)
    }

    fn ladder_len() -> u32 {
        u32::from(Self::MAX_INDEX) + 1
    }

    fn from_position(position: u32) -> Self {
        RatePoint::new(position.min(u32::from(Self::MAX_INDEX)) as u8)
    }

    fn step_ratio() -> f64 {
        1.25
    }
}

/// Full configuration of a CTVC-Net instance.
#[derive(Debug, Clone, PartialEq)]
pub struct CtvcConfig {
    /// Human-readable variant name for reports.
    pub name: &'static str,
    /// Base channel count `N` (paper: 36). Must be even and ≥ 6.
    pub n: usize,
    /// Enables the Swin-AM adaptive quantization gain.
    pub attention: bool,
    /// Enables deformable (sub-pel warped) compensation; when off,
    /// compensation degrades to full-pel block copy (DVC-like).
    pub deformable: bool,
    /// Half-pel motion estimation.
    pub half_pel_motion: bool,
    /// Motion-estimation block size in feature-grid pixels.
    pub me_block: usize,
    /// Motion search range in feature-grid pixels.
    pub me_range: i32,
    /// Numeric precision.
    pub precision: Precision,
    /// Transform-domain sparsity ρ (None = dense execution).
    pub sparsity: Option<f64>,
    /// Seed for all procedurally generated weights.
    pub seed: u64,
    /// Worker threads for layer execution (`0` = use all available
    /// hardware parallelism). Parallel splits are over output channels,
    /// tiles and windows only, so every thread count produces
    /// bit-identical bitstreams and reconstructions.
    pub threads: usize,
}

impl CtvcConfig {
    fn base(name: &'static str, n: usize) -> Self {
        CtvcConfig {
            name,
            n,
            attention: true,
            deformable: true,
            half_pel_motion: true,
            me_block: 8,
            me_range: 12,
            precision: Precision::Fp32,
            sparsity: None,
            seed: 0xC7C7_2024,
            threads: 0,
        }
    }

    /// Returns a copy of this configuration pinned to `threads` worker
    /// threads (`0` = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Full-precision CTVC-Net (Table I "CTVC-Net (FP)").
    pub fn ctvc_fp(n: usize) -> Self {
        Self::base("CTVC-Net(FP)", n)
    }

    /// Fixed-point CTVC-Net (Table I "CTVC-Net (FXP)").
    pub fn ctvc_fxp(n: usize) -> Self {
        CtvcConfig {
            name: "CTVC-Net(FXP)",
            precision: Precision::Fxp,
            ..Self::base("", n)
        }
    }

    /// Sparse fixed-point CTVC-Net at ρ = 50 % (Table I "CTVC-Net
    /// (Sparse)") — the configuration NVCA executes.
    pub fn ctvc_sparse(n: usize) -> Self {
        CtvcConfig {
            name: "CTVC-Net(Sparse)",
            precision: Precision::Fxp,
            sparsity: Some(0.5),
            ..Self::base("", n)
        }
    }

    /// FVC-like ablation: feature-space coding without attention.
    pub fn fvc_like(n: usize) -> Self {
        CtvcConfig {
            name: "FVC-like",
            attention: false,
            ..Self::base("", n)
        }
    }

    /// DVC-like ablation: no attention, no deformable warp, full-pel
    /// motion on coarse blocks — the first-generation learned-codec
    /// baseline.
    pub fn dvc_like(n: usize) -> Self {
        CtvcConfig {
            name: "DVC-like",
            attention: false,
            deformable: false,
            half_pel_motion: false,
            me_block: 16,
            me_range: 8,
            ..Self::base("", n)
        }
    }

    /// Validates structural constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 6 || !self.n.is_multiple_of(2) {
            return Err(format!("N must be even and >= 6, got {}", self.n));
        }
        if self.me_block == 0 || self.me_range <= 0 {
            return Err("motion parameters must be positive".into());
        }
        if let Some(rho) = self.sparsity {
            if !(0.0..1.0).contains(&rho) {
                return Err(format!("sparsity {rho} outside [0, 1)"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_points_are_monotone() {
        let steps: Vec<f32> = RatePoint::sweep().iter().map(|r| r.latent_step()).collect();
        for w in steps.windows(2) {
            assert!(w[0] > w[1], "steps must shrink: {w:?}");
        }
        assert!(RatePoint::new(1).intra_step() < RatePoint::new(1).latent_step());
    }

    #[test]
    fn rate_points_clamp_to_the_sweep() {
        // `new` clamps instead of extrapolating the quantizer step…
        assert_eq!(RatePoint::new(9).index(), RatePoint::MAX_INDEX);
        assert_eq!(
            RatePoint::new(9).latent_step(),
            RatePoint::new(3).latent_step()
        );
        assert_eq!(RatePoint::new(255).index(), RatePoint::MAX_INDEX);
        // …`try_new` rejects outright…
        assert!(RatePoint::try_new(4).is_err());
        assert!(RatePoint::try_new(3).is_ok());
        // …and every sweep point is constructible both ways.
        for r in RatePoint::sweep() {
            assert_eq!(RatePoint::try_new(r.index()).unwrap(), r);
        }
    }

    #[test]
    fn presets_validate() {
        for cfg in [
            CtvcConfig::ctvc_fp(36),
            CtvcConfig::ctvc_fxp(36),
            CtvcConfig::ctvc_sparse(36),
            CtvcConfig::fvc_like(12),
            CtvcConfig::dvc_like(12),
        ] {
            assert!(cfg.validate().is_ok(), "{}", cfg.name);
        }
        assert!(CtvcConfig::ctvc_fp(5).validate().is_err());
        assert!(CtvcConfig::ctvc_fp(7).validate().is_err());
        let mut bad = CtvcConfig::ctvc_fp(12);
        bad.sparsity = Some(1.5);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn preset_flags_follow_the_ladder() {
        assert!(CtvcConfig::ctvc_fp(36).attention);
        assert!(!CtvcConfig::fvc_like(36).attention);
        let dvc = CtvcConfig::dvc_like(36);
        assert!(!dvc.attention && !dvc.deformable && !dvc.half_pel_motion);
        assert_eq!(CtvcConfig::ctvc_sparse(36).sparsity, Some(0.5));
        assert_eq!(CtvcConfig::ctvc_sparse(36).precision, Precision::Fxp);
    }
}
