//! Analytic weight constructions — the reproduction's substitute for
//! trained parameters (see crate docs and `DESIGN.md`).

use nvc_tensor::init::Gaussian;
use nvc_tensor::ops::{Conv2d, DeConv2d};
use nvc_tensor::TensorError;

/// 1-D binomial low-pass taps `[1, 2, 1] / 4`.
pub const GAUSS3: [f32; 3] = [0.25, 0.5, 0.25];

/// 1-D bilinear synthesis taps for `DeConv(·, 4, 2)`: each output phase
/// sums to 1, so upsampling preserves DC exactly.
pub const BILINEAR4: [f32; 4] = [0.25, 0.75, 0.75, 0.25];

/// Builds a 3×3 convolution whose output channel `co` is a weighted sum of
/// center-tap (Dirac) contributions given by `taps(co) -> Vec<(ci, gain)>`.
pub fn dirac_conv(
    c_out: usize,
    c_in: usize,
    taps: impl Fn(usize) -> Vec<(usize, f32)>,
) -> Result<Conv2d, TensorError> {
    Conv2d::from_fn(c_out, c_in, 3, 1, 1, |co, ci, kh, kw| {
        if kh == 1 && kw == 1 {
            taps(co)
                .iter()
                .find(|(i, _)| *i == ci)
                .map(|&(_, g)| g)
                .unwrap_or(0.0)
        } else {
            0.0
        }
    })
}

/// Builds a 3×3 convolution whose output channel `co` applies a separable
/// Gaussian blur to input channel `src(co)` with gain `g(co)`, plus small
/// seeded texture kernels for channels with no source.
#[allow(dead_code)] // part of the analytic weight-construction toolkit
pub fn blur_conv(
    c_out: usize,
    c_in: usize,
    src: impl Fn(usize) -> Option<(usize, f32)>,
    noise_std: f32,
    seed: u64,
) -> Result<Conv2d, TensorError> {
    let mut g = Gaussian::new(seed);
    Conv2d::from_fn(c_out, c_in, 3, 1, 1, |co, ci, kh, kw| match src(co) {
        Some((s, gain)) if s == ci => {
            gain * GAUSS3[kh] * GAUSS3[kw] / (GAUSS3[1] * GAUSS3[1]) * 0.25
        }
        Some(_) => 0.0,
        None => g.sample(0.0, noise_std),
    })
}

/// Anti-aliased stride-2 downsampling convolution (`Conv(c_out, 3, 2)`):
/// channel `j < keep` low-pass filters channel `j`; channels `>= keep` are
/// small seeded kernels so the layer still exercises the full array.
pub fn pyramid_down_conv(
    c_out: usize,
    c_in: usize,
    keep: usize,
    seed: u64,
) -> Result<Conv2d, TensorError> {
    let mut g = Gaussian::new(seed);
    Conv2d::from_fn(c_out, c_in, 3, 2, 1, |co, ci, kh, kw| {
        if co < keep && co < c_in && ci == co {
            GAUSS3[kh] * GAUSS3[kw]
        } else if co >= keep {
            g.sample(0.0, 0.01)
        } else {
            0.0
        }
    })
}

/// Bilinear upsampling deconvolution (`DeConv(c_out, 4, 2)`): channel
/// `j < keep` bilinearly upsamples channel `j` with gain `gain`.
pub fn bilinear_up_deconv(
    c_out: usize,
    c_in: usize,
    keep: usize,
    gain: f32,
) -> Result<DeConv2d, TensorError> {
    DeConv2d::from_fn(c_out, c_in, 4, 2, 1, |ci, co, kh, kw| {
        if co < keep && ci == co {
            gain * BILINEAR4[kh] * BILINEAR4[kw]
        } else {
            0.0
        }
    })
}

/// Bilinear RGB synthesis deconvolution for frame reconstruction: output
/// channel `c ∈ {0,1,2}` = `0.5 · up(ch c) − 0.5 · up(ch c+3)`, combining
/// the max-pooled `+x` and `−x` polyphase channels into an unbiased
/// midpoint estimate.
pub fn rgb_synthesis_deconv(c_in: usize) -> Result<DeConv2d, TensorError> {
    DeConv2d::from_fn(3, c_in, 4, 2, 1, |ci, co, kh, kw| {
        let tap = BILINEAR4[kh] * BILINEAR4[kw];
        if ci == co {
            0.5 * tap
        } else if ci == co + 3 {
            -0.5 * tap
        } else {
            0.0
        }
    })
}

/// Near-identity 3×3 convolution: Dirac + small seeded perturbation. Used
/// inside residual blocks so they perturb rather than destroy the signal
/// while still exercising dense compute.
pub fn near_identity_conv(c: usize, std: f32, seed: u64) -> Result<Conv2d, TensorError> {
    let mut g = Gaussian::new(seed);
    Conv2d::from_fn(c, c, 3, 1, 1, |co, ci, kh, kw| {
        let base = if co == ci && kh == 1 && kw == 1 {
            1.0
        } else {
            0.0
        };
        base + g.sample(0.0, std)
    })
}

/// Small random 3×3 convolution (residual-branch second conv).
pub fn small_random_conv(
    c_out: usize,
    c_in: usize,
    std: f32,
    seed: u64,
) -> Result<Conv2d, TensorError> {
    let mut g = Gaussian::new(seed);
    Conv2d::from_fn(c_out, c_in, 3, 1, 1, |_, _, _, _| g.sample(0.0, std))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvc_tensor::{Shape, Tensor};

    #[test]
    fn bilinear_taps_preserve_dc() {
        // Each stride-2 phase of the 1-D taps sums to 1.
        assert!((BILINEAR4[0] + BILINEAR4[2] - 1.0).abs() < 1e-6);
        assert!((BILINEAR4[1] + BILINEAR4[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bilinear_up_deconv_preserves_constants() {
        let up = bilinear_up_deconv(2, 2, 2, 1.0).unwrap();
        let x = Tensor::filled(Shape::new(1, 2, 4, 4), 0.7);
        let y = up.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), (1, 2, 8, 8));
        // Interior samples equal the constant (borders lose mass to the
        // zero padding).
        assert!((y.at(0, 0, 4, 4) - 0.7).abs() < 1e-5);
        assert!((y.at(0, 1, 3, 5) - 0.7).abs() < 1e-5);
    }

    #[test]
    fn pyramid_down_preserves_constants() {
        let down = pyramid_down_conv(4, 2, 2, 1).unwrap();
        let x = Tensor::filled(Shape::new(1, 2, 8, 8), 0.3);
        let y = down.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), (1, 4, 4, 4));
        assert!((y.at(0, 0, 2, 2) - 0.3).abs() < 1e-5);
        assert!((y.at(0, 1, 1, 2) - 0.3).abs() < 1e-5);
        // Non-kept channels are near zero.
        assert!(y.at(0, 2, 2, 2).abs() < 0.1);
    }

    #[test]
    fn dirac_conv_routes_channels() {
        let conv = dirac_conv(2, 3, |co| vec![(co + 1, 2.0)]).unwrap();
        let x = Tensor::from_fn(Shape::new(1, 3, 2, 2), |_, c, _, _| c as f32);
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.at(0, 0, 0, 0), 2.0); // 2 * ch1
        assert_eq!(y.at(0, 1, 1, 1), 4.0); // 2 * ch2
    }

    #[test]
    fn near_identity_is_close_to_identity() {
        let conv = near_identity_conv(3, 0.01, 5).unwrap();
        let x = Tensor::from_fn(Shape::new(1, 3, 6, 6), |_, c, h, w| {
            (c as f32 + 1.0) * 0.1 + (h + w) as f32 * 0.01
        });
        let y = conv.forward(&x).unwrap();
        let rel = y.sub(&x).unwrap().max_abs() / x.max_abs();
        assert!(rel < 0.2, "perturbation too large: {rel}");
    }

    #[test]
    fn rgb_synthesis_combines_plus_minus() {
        let up = rgb_synthesis_deconv(8).unwrap();
        // +x channels constant 0.6, -x channels hold -0.6 → recon 0.6.
        let x = Tensor::from_fn(Shape::new(1, 8, 4, 4), |_, c, _, _| match c {
            0..=2 => 0.6,
            3..=5 => -0.6,
            _ => 9.9, // unused channels must not leak
        });
        let y = up.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), (1, 3, 8, 8));
        assert!((y.at(0, 0, 4, 4) - 0.6).abs() < 1e-5);
        assert!((y.at(0, 2, 3, 3) - 0.6).abs() < 1e-5);
    }
}
