//! Functional motion estimation: full-search block matching with optional
//! half-pel refinement, operating on a single derived feature plane.
//!
//! This is the documented substitute for the paper's trained
//! motion-estimation CNN (see `DESIGN.md`): it produces the dense motion
//! field that the motion-compression autoencoder codes and the deformable
//! compensation consumes.

use nvc_core::ExecCtx;
use nvc_tensor::{Shape, Tensor};

/// Mean of the first three channels (the ±RGB passthrough features) as a
/// single matching plane.
pub fn matching_plane(features: &Tensor) -> Tensor {
    let (_, _, h, w) = features.shape().dims();
    Tensor::from_fn(Shape::new(1, 1, h, w), |_, _, y, x| {
        (features.at(0, 0, y, x) + features.at(0, 1, y, x) + features.at(0, 2, y, x)) / 3.0
    })
}

fn sad(cur: &Tensor, reference: &Tensor, by: usize, bx: usize, bs: usize, dy: f32, dx: f32) -> f64 {
    // Bilinear sampling at whole-pel offsets reduces exactly to the
    // integer sample (the fractional weights are 0/1), so the full-pel
    // search can skip the interpolation arithmetic entirely.
    if dy.fract() == 0.0 && dx.fract() == 0.0 {
        return sad_full_pel(cur, reference, by, bx, bs, dy as isize, dx as isize);
    }
    let mut acc = 0.0_f64;
    for y in 0..bs {
        for x in 0..bs {
            let cy = by + y;
            let cx = bx + x;
            let c = cur.at_padded(0, 0, cy as isize, cx as isize);
            let r = reference.sample_bilinear(0, 0, cy as f32 + dy, cx as f32 + dx);
            acc += (c - r).abs() as f64;
        }
    }
    acc
}

fn sad_full_pel(
    cur: &Tensor,
    reference: &Tensor,
    by: usize,
    bx: usize,
    bs: usize,
    dy: isize,
    dx: isize,
) -> f64 {
    let mut acc = 0.0_f64;
    for y in 0..bs {
        let cy = (by + y) as isize;
        for x in 0..bs {
            let cx = (bx + x) as isize;
            let c = cur.at_padded(0, 0, cy, cx);
            let r = reference.at_padded(0, 0, cy + dy, cx + dx);
            acc += (c - r).abs() as f64;
        }
    }
    acc
}

/// Estimates a dense per-pixel motion field between two single-channel
/// planes via block matching.
///
/// Returns a `1 × 2 × h × w` tensor: channel 0 = `dy`, channel 1 = `dx`
/// (piecewise constant per block), in the convention
/// `cur(y, x) ≈ ref(y + dy, x + dx)`.
///
/// # Panics
///
/// Panics if the planes differ in shape or are not single-channel.
pub fn estimate_motion(
    cur: &Tensor,
    reference: &Tensor,
    block: usize,
    range: i32,
    half_pel: bool,
) -> Tensor {
    estimate_motion_ctx(cur, reference, block, range, half_pel, &ExecCtx::serial())
}

/// [`estimate_motion`] with the per-block full searches fanned across
/// `exec`'s worker pool. Every block's search is independent and reads
/// only the two fixed planes, so the field is bit-identical for every
/// worker count.
///
/// # Panics
///
/// Panics if the planes differ in shape or are not single-channel.
pub fn estimate_motion_ctx(
    cur: &Tensor,
    reference: &Tensor,
    block: usize,
    range: i32,
    half_pel: bool,
    exec: &ExecCtx,
) -> Tensor {
    assert_eq!(cur.shape(), reference.shape(), "plane shapes must match");
    assert_eq!(cur.shape().c(), 1, "motion estimation runs on one plane");
    let (_, _, h, w) = cur.shape().dims();
    let coords: Vec<(usize, usize)> = (0..h)
        .step_by(block)
        .flat_map(|by| (0..w).step_by(block).map(move |bx| (by, bx)))
        .collect();
    let mut vectors = vec![(0.0_f32, 0.0_f32); coords.len()];
    // Each block evaluates (2·range + 1)² SAD candidates of bs² pixels;
    // gate the fan-out so small planes search serially.
    let search_points = (2 * range as u64 + 1).pow(2) + if half_pel { 8 } else { 0 };
    let work = (h * w) as u64 * search_points;
    exec.par_chunks_mut_gated(&mut vectors, 1, work, |bi, v| {
        let (by, bx) = coords[bi];
        let bs = block.min(h - by).min(w - bx);
        let mut best = (0.0_f32, 0.0_f32);
        // Small bias toward shorter vectors stabilises flat regions.
        let mut best_cost = sad(cur, reference, by, bx, bs, 0.0, 0.0);
        for dy in -range..=range {
            for dx in -range..=range {
                if dy == 0 && dx == 0 {
                    continue;
                }
                let cost = sad(cur, reference, by, bx, bs, dy as f32, dx as f32)
                    + 0.02 * (dy.abs() + dx.abs()) as f64;
                if cost < best_cost {
                    best_cost = cost;
                    best = (dy as f32, dx as f32);
                }
            }
        }
        if half_pel {
            let (cy, cx) = best;
            for sy in [-0.5_f32, 0.0, 0.5] {
                for sx in [-0.5_f32, 0.0, 0.5] {
                    if sy == 0.0 && sx == 0.0 {
                        continue;
                    }
                    let cost = sad(cur, reference, by, bx, bs, cy + sy, cx + sx);
                    if cost < best_cost {
                        best_cost = cost;
                        best = (cy + sy, cx + sx);
                    }
                }
            }
        }
        v[0] = best;
    });
    let mut field = Tensor::zeros(Shape::new(1, 2, h, w));
    for (&(by, bx), &(dy, dx)) in coords.iter().zip(&vectors) {
        let bs = block.min(h - by).min(w - bx);
        for y in 0..bs {
            for x in 0..bs {
                *field.at_mut(0, 0, by + y, bx + x) = dy;
                *field.at_mut(0, 1, by + y, bx + x) = dx;
            }
        }
    }
    field
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(h: usize, w: usize, oy: f32, ox: f32) -> Tensor {
        // Incommensurate low frequencies: no period shorter than the
        // search diameter, so block matching cannot alias.
        Tensor::from_fn(Shape::new(1, 1, h, w), |_, _, y, x| {
            let fy = y as f32 + oy;
            let fx = x as f32 + ox;
            (fy * 0.35).sin() * (fx * 0.28).cos() + 0.5 * (fy * 0.13 + fx * 0.21).sin()
        })
    }

    #[test]
    fn recovers_integer_translation() {
        // cur(y, x) = ref(y + 2, x - 3): motion (dy, dx) = (2, -3).
        let reference = textured(32, 32, 0.0, 0.0);
        let cur = textured(32, 32, 2.0, -3.0);
        let field = estimate_motion(&cur, &reference, 8, 6, false);
        // Interior blocks (borders suffer from padding).
        for by in [8, 16] {
            for bx in [8, 16] {
                assert_eq!(field.at(0, 0, by, bx), 2.0, "dy at ({by},{bx})");
                assert_eq!(field.at(0, 1, by, bx), -3.0, "dx at ({by},{bx})");
            }
        }
    }

    #[test]
    fn recovers_half_pel_translation() {
        let reference = textured(32, 32, 0.0, 0.0);
        let cur = textured(32, 32, 0.5, 1.5);
        let field = estimate_motion(&cur, &reference, 8, 4, true);
        let dy = field.at(0, 0, 16, 16);
        let dx = field.at(0, 1, 16, 16);
        assert!((dy - 0.5).abs() <= 0.5, "dy {dy}");
        assert!((dx - 1.5).abs() <= 0.5, "dx {dx}");
    }

    #[test]
    fn zero_motion_for_identical_planes() {
        let p = textured(16, 16, 0.0, 0.0);
        let field = estimate_motion(&p, &p, 8, 4, true);
        assert_eq!(field.max_abs(), 0.0);
    }

    #[test]
    fn matching_plane_averages_rgb_features() {
        let f = Tensor::from_fn(Shape::new(1, 6, 2, 2), |_, c, _, _| c as f32);
        let p = matching_plane(&f);
        assert_eq!(p.shape().dims(), (1, 1, 2, 2));
        assert_eq!(p.at(0, 0, 0, 0), 1.0); // (0 + 1 + 2) / 3
    }
}
