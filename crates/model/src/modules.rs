//! CTVC-Net modules (paper Fig. 2a–e) with analytic weights.

use crate::config::CtvcConfig;
use crate::layers::{ConvOp, DeconvOp, NumericCtx, ResBlock, SwinAm};
use crate::weights;
use nvc_core::ExecCtx;
use nvc_tensor::ops::{relu, Conv2d, DeformConv2d, MaxPool2d};
use nvc_tensor::{Tensor, TensorError};

/// Runs a stride-2 deconvolution with edge-replicated input padding so the
/// upsampled output has no zero-padding falloff at the borders (standard
/// edge handling; the operator itself is unchanged).
fn padded_deconv(op: &DeconvOp, x: &Tensor, exec: &ExecCtx) -> Result<Tensor, TensorError> {
    let (_, _, h, w) = x.shape().dims();
    let y = op.forward_ctx(&x.replicate_pad(1), exec)?;
    y.crop_region(2, 2, 2 * h, 2 * w)
}

/// Feature extraction (Fig. 2a): `Conv(N,3,1) → MaxPool(2) → ResBlock`.
///
/// Channel plan (the analytic substitute for learned features):
/// `0..3` = +RGB passthrough, `3..6` = −RGB passthrough (so max-pooling
/// keeps both envelope extremes and reconstruction can form the unbiased
/// midpoint), `6..9` = blurred RGB (motion-search robustness), the rest
/// small seeded texture kernels.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    conv1: ConvOp,
    pool: MaxPool2d,
    res: ResBlock,
    ctx: NumericCtx,
}

impl FeatureExtractor {
    /// Builds the module from a configuration.
    ///
    /// # Errors
    ///
    /// Propagates operator construction errors.
    pub fn new(cfg: &CtvcConfig) -> Result<Self, TensorError> {
        let n = cfg.n;
        let mut g = nvc_tensor::init::Gaussian::new(cfg.seed ^ 0xFE);
        let conv1 = Conv2d::from_fn(n, 3, 3, 1, 1, |co, ci, kh, kw| {
            let centre = kh == 1 && kw == 1;
            if co < 3 {
                if centre && ci == co {
                    1.0
                } else {
                    0.0
                }
            } else if co < 6 {
                if centre && ci == co - 3 {
                    -1.0
                } else {
                    0.0
                }
            } else if co < 9 && co - 6 < 3 {
                // Low-gain blurred RGB: exercises compute without bloating
                // the intra-coded feature entropy.
                if ci == co - 6 {
                    0.25 * weights::GAUSS3[kh] * weights::GAUSS3[kw]
                } else {
                    0.0
                }
            } else {
                g.sample(0.0, 0.03)
            }
        })?;
        Ok(FeatureExtractor {
            conv1: ConvOp::build(conv1, cfg.precision, cfg.sparsity)?,
            pool: MaxPool2d::new(2)?,
            res: ResBlock::near_identity(n, cfg.precision, cfg.sparsity, cfg.seed ^ 0xFE01)?,
            ctx: NumericCtx::new(cfg.precision),
        })
    }

    /// Maps a `3 × H × W` frame tensor to `N × H/2 × W/2` features,
    /// single-threaded.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (H, W must be even).
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(x, &ExecCtx::serial())
    }

    /// Same as [`FeatureExtractor::forward`], on `exec`'s worker pool.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (H, W must be even).
    pub fn forward_ctx(&self, x: &Tensor, exec: &ExecCtx) -> Result<Tensor, TensorError> {
        let a = self.ctx.actq(self.conv1.forward_ctx(x, exec)?);
        let p = self.pool.forward(&a)?;
        let out = self.res.forward_ctx(&p, exec)?;
        Ok(self.ctx.actq(out))
    }
}

/// Frame reconstruction (Fig. 2b): `ResBlock → DeConv(3,4,2)`.
#[derive(Debug, Clone)]
pub struct FrameReconstructor {
    res: ResBlock,
    deconv: DeconvOp,
    ctx: NumericCtx,
}

impl FrameReconstructor {
    /// Builds the module.
    ///
    /// # Errors
    ///
    /// Propagates operator construction errors.
    pub fn new(cfg: &CtvcConfig) -> Result<Self, TensorError> {
        Ok(FrameReconstructor {
            res: ResBlock::near_identity(cfg.n, cfg.precision, cfg.sparsity, cfg.seed ^ 0xF4)?,
            deconv: DeconvOp::build(
                weights::rgb_synthesis_deconv(cfg.n)?,
                cfg.precision,
                cfg.sparsity,
            )?,
            ctx: NumericCtx::new(cfg.precision),
        })
    }

    /// Maps `N × H/2 × W/2` features back to a `3 × H × W` frame tensor,
    /// single-threaded.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&self, f: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(f, &ExecCtx::serial())
    }

    /// Same as [`FrameReconstructor::forward`], on `exec`'s worker pool.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward_ctx(&self, f: &Tensor, exec: &ExecCtx) -> Result<Tensor, TensorError> {
        let a = self.ctx.actq(self.res.forward_ctx(f, exec)?);
        padded_deconv(&self.deconv, &a, exec)
    }
}

/// Motion-estimation CNN shell (Fig. 2c): `Conv(2N,3,1) → Conv(N,3,1)`.
///
/// Functionally the codec estimates motion by block matching (see
/// `DESIGN.md`); this module exists so the *encoder-side* compute graph
/// carries the paper's layers, and its output refines nothing.
#[derive(Debug, Clone)]
pub struct MotionCnn {
    conv1: ConvOp,
    conv2: ConvOp,
    ctx: NumericCtx,
}

impl MotionCnn {
    /// Builds the module.
    ///
    /// # Errors
    ///
    /// Propagates operator construction errors.
    pub fn new(cfg: &CtvcConfig) -> Result<Self, TensorError> {
        let n = cfg.n;
        Ok(MotionCnn {
            conv1: ConvOp::build(
                weights::small_random_conv(2 * n, 2 * n, 0.02, cfg.seed ^ 0x3E)?,
                cfg.precision,
                cfg.sparsity,
            )?,
            conv2: ConvOp::build(
                weights::small_random_conv(n, 2 * n, 0.02, cfg.seed ^ 0x3E02)?,
                cfg.precision,
                cfg.sparsity,
            )?,
            ctx: NumericCtx::new(cfg.precision),
        })
    }

    /// Runs the shell over concatenated features (`2N` channels in, `N`
    /// out), single-threaded.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(x, &ExecCtx::serial())
    }

    /// Same as [`MotionCnn::forward`], on `exec`'s worker pool.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward_ctx(&self, x: &Tensor, exec: &ExecCtx) -> Result<Tensor, TensorError> {
        let a = self.ctx.actq(self.conv1.forward_ctx(&relu(x), exec)?);
        self.conv2.forward_ctx(&relu(&a), exec)
    }
}

/// Deformable motion compensation (Fig. 2d): offset conv → `DfConv(N,3,1,
/// G=2)` → two refinement convs with a skip from the warped features.
#[derive(Debug, Clone)]
pub struct DeformableCompensation {
    offset_conv: Conv2d,
    dfconv: DeformConv2d,
    refine1: ConvOp,
    refine2: ConvOp,
    ctx: NumericCtx,
}

/// Scale by which the motion field is stored in the `Ô_t` tensor
/// (channel 0 = dy / SCALE, channel 1 = dx / SCALE).
pub const MOTION_SCALE: f32 = 4.0;

impl DeformableCompensation {
    /// Builds the module: the offset conv broadcasts the reconstructed
    /// motion channels to all `2·G·k²` deformable taps, and the DfConv
    /// kernels are centre-tap identities, so the module computes a true
    /// bilinear warp plus a learned-style refinement.
    ///
    /// # Errors
    ///
    /// Propagates operator construction errors.
    pub fn new(cfg: &CtvcConfig) -> Result<Self, TensorError> {
        let n = cfg.n;
        let groups = 2;
        let offset_channels = 2 * groups * 9;
        let offset_conv = Conv2d::from_fn(offset_channels, n, 3, 1, 1, |co, ci, kh, kw| {
            let centre = kh == 1 && kw == 1;
            // Even offset channels = dy (from Ô_t ch 0), odd = dx (ch 1).
            if centre && ci == co % 2 {
                MOTION_SCALE
            } else {
                0.0
            }
        })?;
        let mut df_weight = vec![0.0_f32; n * n * 9];
        for c in 0..n {
            df_weight[(c * n + c) * 9 + 4] = 1.0; // centre tap identity
        }
        let dfconv = DeformConv2d::new(df_weight, vec![0.0; n], n, n, 3, 1, groups)?;
        Ok(DeformableCompensation {
            offset_conv,
            dfconv,
            refine1: ConvOp::build(
                weights::small_random_conv(n, n, 0.003, cfg.seed ^ 0xDC)?,
                cfg.precision,
                cfg.sparsity,
            )?,
            refine2: ConvOp::build(
                weights::small_random_conv(n, n, 0.003, cfg.seed ^ 0xDC02)?,
                cfg.precision,
                cfg.sparsity,
            )?,
            ctx: NumericCtx::new(cfg.precision),
        })
    }

    /// Warps the reference features by the reconstructed motion `ô_t` and
    /// refines: returns the predicted features `F̄_t`. Single-threaded.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&self, reference: &Tensor, o_hat: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(reference, o_hat, &ExecCtx::serial())
    }

    /// Same as [`DeformableCompensation::forward`], on `exec`'s worker
    /// pool.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward_ctx(
        &self,
        reference: &Tensor,
        o_hat: &Tensor,
        exec: &ExecCtx,
    ) -> Result<Tensor, TensorError> {
        let offsets = self.offset_conv.forward_ctx(o_hat, exec)?;
        let warped = self
            .ctx
            .actq(self.dfconv.forward_ctx(reference, &offsets, exec)?);
        let r = self
            .ctx
            .actq(self.refine1.forward_ctx(&relu(&warped), exec)?);
        let r = self.refine2.forward_ctx(&relu(&r), exec)?;
        warped.add(&r)
    }
}

/// Analysis transform of the compression autoencoders (Fig. 2e, left):
/// three stride-2 stages with ResBlocks and two Swin-AMs, then a channel
/// selection conv to the `N`-channel latent.
#[derive(Debug, Clone)]
pub struct Analysis {
    down1: Conv2d,
    res: Vec<ResBlock>,
    down2: Conv2d,
    swin1: SwinAm,
    down3: Conv2d,
    swin2: SwinAm,
    select: Conv2d,
    ctx: NumericCtx,
    use_attention: bool,
}

impl Analysis {
    fn new(cfg: &CtvcConfig, seed: u64) -> Result<Self, TensorError> {
        let n = cfg.n;
        let heads = 2;
        Ok(Analysis {
            down1: weights::pyramid_down_conv(2 * n, n, n, seed ^ 0xA1)?,
            res: (0..3)
                .map(|i| {
                    ResBlock::near_identity(
                        2 * n,
                        cfg.precision,
                        cfg.sparsity,
                        seed ^ (0xA2 + i as u64),
                    )
                })
                .collect::<Result<Vec<_>, _>>()?,
            down2: weights::pyramid_down_conv(2 * n, 2 * n, n, seed ^ 0xA3)?,
            swin1: SwinAm::new(2 * n, 3, 0, heads, cfg.precision, cfg.sparsity, seed ^ 0xA4)?,
            down3: weights::pyramid_down_conv(2 * n, 2 * n, n, seed ^ 0xA5)?,
            swin2: SwinAm::new(2 * n, 3, 2, heads, cfg.precision, cfg.sparsity, seed ^ 0xA6)?,
            select: weights::dirac_conv(n, 2 * n, |co| vec![(co, 1.0)])?,
            ctx: NumericCtx::new(cfg.precision),
            use_attention: cfg.attention,
        })
    }

    /// Maps `N × h × w` input to the `N × h/8 × w/8` latent,
    /// single-threaded.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (h, w must be divisible by 8).
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(x, &ExecCtx::serial())
    }

    /// Same as [`Analysis::forward`], on `exec`'s worker pool.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (h, w must be divisible by 8).
    pub fn forward_ctx(&self, x: &Tensor, exec: &ExecCtx) -> Result<Tensor, TensorError> {
        let mut t = self.ctx.actq(self.down1.forward_ctx(x, exec)?);
        for rb in &self.res {
            t = self.ctx.actq(rb.forward_ctx(&t, exec)?);
        }
        t = self.ctx.actq(self.down2.forward_ctx(&t, exec)?);
        if self.use_attention {
            t = self.ctx.actq(self.swin1.forward_ctx(&t, exec)?);
        }
        t = self.ctx.actq(self.down3.forward_ctx(&t, exec)?);
        if self.use_attention {
            t = self.ctx.actq(self.swin2.forward_ctx(&t, exec)?);
        }
        self.select.forward_ctx(&t, exec)
    }
}

/// Synthesis transform (Fig. 2e, right): three `ResBlock → DeConv(N,4,2)`
/// stages.
#[derive(Debug, Clone)]
pub struct Synthesis {
    stages: Vec<(ResBlock, DeconvOp)>,
    ctx: NumericCtx,
}

impl Synthesis {
    fn new(cfg: &CtvcConfig, seed: u64) -> Result<Self, TensorError> {
        let n = cfg.n;
        let stages = (0..3)
            .map(|i| {
                let rb = ResBlock::near_identity(
                    n,
                    cfg.precision,
                    cfg.sparsity,
                    seed ^ (0x51 + i as u64),
                )?;
                let up = DeconvOp::build(
                    weights::bilinear_up_deconv(n, n, n, 1.0)?,
                    cfg.precision,
                    cfg.sparsity,
                )?;
                Ok((rb, up))
            })
            .collect::<Result<Vec<_>, TensorError>>()?;
        Ok(Synthesis {
            stages,
            ctx: NumericCtx::new(cfg.precision),
        })
    }

    /// Maps the `N × h/8 × w/8` latent back to `N × h × w`,
    /// single-threaded.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward(&self, z: &Tensor) -> Result<Tensor, TensorError> {
        self.forward_ctx(z, &ExecCtx::serial())
    }

    /// Same as [`Synthesis::forward`], on `exec`'s worker pool.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn forward_ctx(&self, z: &Tensor, exec: &ExecCtx) -> Result<Tensor, TensorError> {
        let mut t = z.clone();
        for (rb, up) in &self.stages {
            t = self.ctx.actq(rb.forward_ctx(&t, exec)?);
            t = self.ctx.actq(padded_deconv(up, &t, exec)?);
        }
        Ok(t)
    }
}

/// One compression autoencoder (motion or residual): analysis + synthesis
/// plus access to the final Swin-AM mask for adaptive quantization.
#[derive(Debug, Clone)]
pub struct CompressionAutoencoder {
    /// The analysis (encoder-side) transform.
    pub analysis: Analysis,
    /// The synthesis (decoder-side) transform.
    pub synthesis: Synthesis,
    /// Swin-AM used to derive the quantization gain mask from the latent.
    mask_am: SwinAm,
}

impl CompressionAutoencoder {
    /// Builds both transforms for a module (seed-disambiguated).
    ///
    /// # Errors
    ///
    /// Propagates operator construction errors.
    pub fn new(cfg: &CtvcConfig, seed: u64) -> Result<Self, TensorError> {
        Ok(CompressionAutoencoder {
            analysis: Analysis::new(cfg, seed)?,
            synthesis: Synthesis::new(cfg, seed ^ 0x5EED)?,
            mask_am: SwinAm::new(
                2 * cfg.n,
                3,
                2,
                2,
                cfg.precision,
                cfg.sparsity,
                seed ^ 0x3A5C,
            )?,
        })
    }

    /// The quantization gain mask in `(0, 1)` for a latent: the Swin-AM
    /// mask evaluated on the ±latent pair (channels `j` and `j + N` carry
    /// `z` and `−z`), truncated to the first `N` channels.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn latent_mask(&self, z: &Tensor) -> Result<Tensor, TensorError> {
        self.latent_mask_ctx(z, &ExecCtx::serial())
    }

    /// Same as [`CompressionAutoencoder::latent_mask`], on `exec`'s
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn latent_mask_ctx(&self, z: &Tensor, exec: &ExecCtx) -> Result<Tensor, TensorError> {
        let neg = z.scale(-1.0);
        let paired = Tensor::concat_channels(&[z, &neg])?;
        let mask = self.mask_am.mask_ctx(&paired, exec)?;
        mask.slice_channels(0, z.shape().c())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CtvcConfig;
    use nvc_tensor::Shape;

    fn cfg() -> CtvcConfig {
        CtvcConfig::ctvc_fp(8)
    }

    fn frame_tensor(h: usize, w: usize) -> Tensor {
        Tensor::from_fn(Shape::new(1, 3, h, w), |_, c, y, x| {
            0.5 + 0.3 * ((y as f32 * 0.3 + x as f32 * 0.2 + c as f32).sin())
        })
    }

    #[test]
    fn feature_roundtrip_is_faithful() {
        let cfg = cfg();
        let fe = FeatureExtractor::new(&cfg).unwrap();
        let fr = FrameReconstructor::new(&cfg).unwrap();
        let x = frame_tensor(32, 48);
        let f = fe.forward(&x).unwrap();
        assert_eq!(f.shape().dims(), (1, 8, 16, 24));
        let rec = fr.forward(&f).unwrap();
        assert_eq!(rec.shape().dims(), (1, 3, 32, 48));
        // Down-up roundtrip of smooth content stays close (this bounds
        // the codec's quality ceiling).
        let mse = rec.mse(&x).unwrap();
        let psnr = 10.0 * (1.0 / mse).log10();
        assert!(psnr > 28.0, "feature roundtrip PSNR too low: {psnr:.2} dB");
    }

    #[test]
    fn compensation_performs_exact_integer_warp() {
        let cfg = cfg();
        let dc = DeformableCompensation::new(&cfg).unwrap();
        let reference = Tensor::from_fn(Shape::new(1, 8, 12, 12), |_, c, y, x| {
            (c * 100 + y * 12 + x) as f32 * 0.01
        });
        // Motion (dy, dx) = (1, 2) everywhere, stored scaled by 1/4.
        let mut o_hat = Tensor::zeros(Shape::new(1, 8, 12, 12));
        for y in 0..12 {
            for x in 0..12 {
                *o_hat.at_mut(0, 0, y, x) = 1.0 / MOTION_SCALE;
                *o_hat.at_mut(0, 1, y, x) = 2.0 / MOTION_SCALE;
            }
        }
        let out = dc.forward(&reference, &o_hat).unwrap();
        // Interior samples: out(y,x) ≈ ref(y+1, x+2) up to the small
        // refinement perturbation.
        for c in 0..8 {
            for y in 2..9 {
                for x in 2..8 {
                    let want = reference.at(0, c, y + 1, x + 2);
                    let got = out.at(0, c, y, x);
                    assert!(
                        (want - got).abs() < 0.05 * want.abs().max(1.0),
                        "({c},{y},{x}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn autoencoder_roundtrip_preserves_smooth_signals() {
        let cfg = cfg();
        let ae = CompressionAutoencoder::new(&cfg, 77).unwrap();
        // Very smooth feature-like input (the 8× pyramid can only keep
        // wavelengths longer than ~16 px).
        let x = Tensor::from_fn(Shape::new(1, 8, 16, 24), |_, c, y, xx| {
            0.4 * ((y as f32 * 0.08 + xx as f32 * 0.06 + c as f32 * 0.5).sin())
        });
        let z = ae.analysis.forward(&x).unwrap();
        assert_eq!(z.shape().dims(), (1, 8, 2, 3));
        let rec = ae.synthesis.forward(&z).unwrap();
        assert_eq!(rec.shape().dims(), (1, 8, 16, 24));
        // The 8× pyramid keeps the low-frequency trend: correlation with
        // the input should be strongly positive even if detail is lost.
        let mut dot = 0.0;
        let mut nx = 0.0;
        let mut nr = 0.0;
        for (a, b) in x.as_slice().iter().zip(rec.as_slice()) {
            dot += (a * b) as f64;
            nx += (a * a) as f64;
            nr += (b * b) as f64;
        }
        let corr = dot / (nx.sqrt() * nr.sqrt()).max(1e-12);
        assert!(corr > 0.6, "roundtrip correlation too low: {corr:.3}");
    }

    #[test]
    fn latent_mask_shape_and_range() {
        let cfg = cfg();
        let ae = CompressionAutoencoder::new(&cfg, 78).unwrap();
        let z = Tensor::from_fn(Shape::new(1, 8, 3, 6), |_, c, y, x| {
            0.5 * ((c + y + x) as f32 * 0.3).sin()
        });
        let mask = ae.latent_mask(&z).unwrap();
        assert_eq!(mask.shape(), z.shape());
        for v in mask.as_slice() {
            assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn motion_cnn_shapes() {
        let cfg = cfg();
        let me = MotionCnn::new(&cfg).unwrap();
        let x = Tensor::zeros(Shape::new(1, 16, 8, 8));
        let y = me.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), (1, 8, 8, 8));
    }
}
