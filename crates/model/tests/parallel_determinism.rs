//! Parallel determinism: the codec's worker-pool execution must be
//! bit-exact with serial execution — same packets, same reconstructions —
//! because parallel splits are over output channels, tiles and attention
//! windows only, never over accumulation order.

use nvc_core::ExecCtx;
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint, SwinAttention};
use nvc_tensor::{Shape, Tensor};
use nvc_video::codec::encode_sequence;
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::Sequence;

fn seq(frames: usize) -> Sequence {
    Synthesizer::new(SceneConfig::uvg_like(48, 32, frames)).generate()
}

/// Encodes with an explicit thread count and returns the serialized
/// packets plus the closed-loop reconstructions.
fn encode_with_threads(
    cfg: CtvcConfig,
    threads: usize,
    s: &Sequence,
) -> (Vec<Vec<u8>>, Vec<Vec<f32>>) {
    let codec = CtvcCodec::new(cfg.with_threads(threads)).unwrap();
    let coded = encode_sequence(&codec, s, RatePoint::new(1)).unwrap();
    let packets = coded.packets.iter().map(|p| p.to_bytes()).collect();
    let recon = coded
        .decoded
        .frames()
        .iter()
        .map(|f| f.tensor().as_slice().to_vec())
        .collect();
    (packets, recon)
}

/// Full encode + decode streams are bit-identical across thread counts,
/// for both the direct (FP) and the fast/sparse operator paths.
#[test]
fn encode_decode_streams_are_thread_count_invariant() {
    let s = seq(3);
    for cfg in [CtvcConfig::ctvc_fp(8), CtvcConfig::ctvc_sparse(8)] {
        let name = cfg.name;
        let (ref_packets, ref_recon) = encode_with_threads(cfg.clone(), 1, &s);
        for threads in [2, 4, 0] {
            let (packets, recon) = encode_with_threads(cfg.clone(), threads, &s);
            assert_eq!(
                packets, ref_packets,
                "{name}: packets diverged at {threads} threads"
            );
            assert_eq!(
                recon, ref_recon,
                "{name}: reconstructions diverged at {threads} threads"
            );
        }
        // Decoding the serial stream with a parallel decoder is also
        // bit-exact.
        let parallel = CtvcCodec::new(cfg.clone().with_threads(4)).unwrap();
        let bitstream: Vec<u8> = ref_packets.concat();
        let decoded = parallel.decode(&bitstream).unwrap();
        for (frame, reference) in decoded.frames().iter().zip(&ref_recon) {
            assert_eq!(
                frame.tensor().as_slice(),
                &reference[..],
                "{name}: parallel decode diverged"
            );
        }
    }
}

/// The compressed-kernel (sparse) execution path is bit-exact across
/// worker counts at every pruning level — the grouped lane reduction
/// partitions over output planes and tile groups only, never over
/// accumulation order.
#[test]
fn sparse_operators_are_thread_count_invariant() {
    use nvc_fastalg::{FastConv2d, FastDeConv2d, Sparsity};
    use nvc_tensor::ops::{Conv2d, DeConv2d};
    let x = Tensor::from_fn(Shape::new(1, 3, 11, 13), |_, c, y, xx| {
        0.5 * ((c as f32 * 1.3 + y as f32 * 0.41 + xx as f32 * 0.23).sin())
    });
    for rho in [0.25, 0.5, 0.75, 0.9] {
        let conv = Conv2d::randn(5, 3, 3, 1, 1, 1234).unwrap();
        let fast = FastConv2d::from_conv_pruned(&conv, Sparsity::new(rho).unwrap()).unwrap();
        let deconv = DeConv2d::randn(4, 3, 4, 2, 1, 777).unwrap();
        let fast_de =
            FastDeConv2d::from_deconv_pruned(&deconv, Sparsity::new(rho).unwrap()).unwrap();
        let conv_ref = fast.forward(&x).unwrap();
        let deconv_ref = fast_de.forward(&x).unwrap();
        for threads in [2, 5, 16] {
            let ctx = ExecCtx::with_threads(threads);
            assert_eq!(
                fast.forward_ctx(&x, &ctx).unwrap().as_slice(),
                conv_ref.as_slice(),
                "sparse FastConv2d rho={rho} diverged at {threads} threads"
            );
            assert_eq!(
                fast_de.forward_ctx(&x, &ctx).unwrap().as_slice(),
                deconv_ref.as_slice(),
                "sparse FastDeConv2d rho={rho} diverged at {threads} threads"
            );
        }
    }
}

/// End-to-end determinism of the sparse codec at a pruning level other
/// than the stock 50 % (the config knob feeds every ConvOp/DeconvOp):
/// packets and reconstructions must not depend on the worker count.
#[test]
fn sparse_codec_at_custom_rho_is_thread_count_invariant() {
    let s = seq(2);
    let mut cfg = CtvcConfig::ctvc_sparse(8);
    cfg.sparsity = Some(0.75);
    let (ref_packets, ref_recon) = encode_with_threads(cfg.clone(), 1, &s);
    for threads in [2, 4] {
        let (packets, recon) = encode_with_threads(cfg.clone(), threads, &s);
        assert_eq!(packets, ref_packets, "rho=0.75 packets diverged");
        assert_eq!(recon, ref_recon, "rho=0.75 reconstructions diverged");
    }
}

/// The window-parallel Swin attention is bit-exact across worker counts,
/// including shifted windows and non-multiple spatial sizes.
#[test]
fn swin_attention_is_thread_count_invariant() {
    let x = Tensor::from_fn(Shape::new(1, 8, 11, 13), |_, c, y, xx| {
        0.4 * ((c as f32 * 0.9 + y as f32 * 0.31 + xx as f32 * 0.17).sin())
    });
    for shift in [0, 2] {
        let attn = SwinAttention::new(8, 3, shift, 2, 77).unwrap();
        let reference = attn.forward(&x).unwrap();
        for threads in [2, 3, 8] {
            let got = attn
                .forward_ctx(&x, &ExecCtx::with_threads(threads))
                .unwrap();
            assert_eq!(
                got.as_slice(),
                reference.as_slice(),
                "shift {shift} diverged at {threads} threads"
            );
        }
    }
}

/// The thread knob is carried by the configuration and surfaces on the
/// codec's execution context.
#[test]
fn thread_config_reaches_the_codec() {
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8).with_threads(3)).unwrap();
    assert_eq!(codec.exec().threads(), 3);
    let auto = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    assert!(auto.exec().threads() >= 1);
}
