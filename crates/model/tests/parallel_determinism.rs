//! Parallel determinism: the codec's worker-pool execution must be
//! bit-exact with serial execution — same packets, same reconstructions —
//! because parallel splits are over output channels, tiles and attention
//! windows only, never over accumulation order.

use nvc_core::ExecCtx;
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint, SwinAttention};
use nvc_tensor::{Shape, Tensor};
use nvc_video::codec::encode_sequence;
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::Sequence;

fn seq(frames: usize) -> Sequence {
    Synthesizer::new(SceneConfig::uvg_like(48, 32, frames)).generate()
}

/// Encodes with an explicit thread count and returns the serialized
/// packets plus the closed-loop reconstructions.
fn encode_with_threads(
    cfg: CtvcConfig,
    threads: usize,
    s: &Sequence,
) -> (Vec<Vec<u8>>, Vec<Vec<f32>>) {
    let codec = CtvcCodec::new(cfg.with_threads(threads)).unwrap();
    let coded = encode_sequence(&codec, s, RatePoint::new(1)).unwrap();
    let packets = coded.packets.iter().map(|p| p.to_bytes()).collect();
    let recon = coded
        .decoded
        .frames()
        .iter()
        .map(|f| f.tensor().as_slice().to_vec())
        .collect();
    (packets, recon)
}

/// Full encode + decode streams are bit-identical across thread counts,
/// for both the direct (FP) and the fast/sparse operator paths.
#[test]
fn encode_decode_streams_are_thread_count_invariant() {
    let s = seq(3);
    for cfg in [CtvcConfig::ctvc_fp(8), CtvcConfig::ctvc_sparse(8)] {
        let name = cfg.name;
        let (ref_packets, ref_recon) = encode_with_threads(cfg.clone(), 1, &s);
        for threads in [2, 4, 0] {
            let (packets, recon) = encode_with_threads(cfg.clone(), threads, &s);
            assert_eq!(
                packets, ref_packets,
                "{name}: packets diverged at {threads} threads"
            );
            assert_eq!(
                recon, ref_recon,
                "{name}: reconstructions diverged at {threads} threads"
            );
        }
        // Decoding the serial stream with a parallel decoder is also
        // bit-exact.
        let parallel = CtvcCodec::new(cfg.clone().with_threads(4)).unwrap();
        let bitstream: Vec<u8> = ref_packets.concat();
        let decoded = parallel.decode(&bitstream).unwrap();
        for (frame, reference) in decoded.frames().iter().zip(&ref_recon) {
            assert_eq!(
                frame.tensor().as_slice(),
                &reference[..],
                "{name}: parallel decode diverged"
            );
        }
    }
}

/// The window-parallel Swin attention is bit-exact across worker counts,
/// including shifted windows and non-multiple spatial sizes.
#[test]
fn swin_attention_is_thread_count_invariant() {
    let x = Tensor::from_fn(Shape::new(1, 8, 11, 13), |_, c, y, xx| {
        0.4 * ((c as f32 * 0.9 + y as f32 * 0.31 + xx as f32 * 0.17).sin())
    });
    for shift in [0, 2] {
        let attn = SwinAttention::new(8, 3, shift, 2, 77).unwrap();
        let reference = attn.forward(&x).unwrap();
        for threads in [2, 3, 8] {
            let got = attn
                .forward_ctx(&x, &ExecCtx::with_threads(threads))
                .unwrap();
            assert_eq!(
                got.as_slice(),
                reference.as_slice(),
                "shift {shift} diverged at {threads} threads"
            );
        }
    }
}

/// The thread knob is carried by the configuration and surfaces on the
/// codec's execution context.
#[test]
fn thread_config_reaches_the_codec() {
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8).with_threads(3)).unwrap();
    assert_eq!(codec.exec().threads(), 3);
    let auto = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    assert!(auto.exec().threads() >= 1);
}
