//! Metric registries and the Prometheus-style text render.

use crate::metric::{bucket_bound, Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    metrics: Mutex<BTreeMap<Arc<str>, Metric>>,
}

/// A named set of metrics. Handles are created on first lookup and
/// shared thereafter: `registry.counter("x")` called twice returns two
/// handles onto the same value.
///
/// Two scopes exist side by side. [`Registry::global`] holds
/// process-wide instrumentation (kernel timings, codec frame spans,
/// pool waits). An owned `Registry::new()` scopes metrics to one
/// component — each server keeps its own, so two servers in one process
/// report their own sessions, and a shutdown report reads the same
/// storage the live endpoint renders.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

/// Looking up a name as the wrong kind is a bug at the call site, not a
/// runtime condition: panic with both kinds named.
fn kind_clash(name: &str, want: &'static str, have: &'static str) -> ! {
    panic!("metric `{name}` is a {have}, requested as {want}");
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new).clone()
    }

    /// The counter registered under `name`, created if absent.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.inner.metrics.lock().expect("registry lock");
        match metrics
            .entry(Arc::from(name))
            .or_insert_with(|| Metric::Counter(Counter::detached()))
        {
            Metric::Counter(c) => c.clone(),
            other => kind_clash(name, "counter", other.kind()),
        }
    }

    /// The gauge registered under `name`, created if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.inner.metrics.lock().expect("registry lock");
        match metrics
            .entry(Arc::from(name))
            .or_insert_with(|| Metric::Gauge(Gauge::detached()))
        {
            Metric::Gauge(g) => g.clone(),
            other => kind_clash(name, "gauge", other.kind()),
        }
    }

    /// The histogram registered under `name`, created if absent.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.inner.metrics.lock().expect("registry lock");
        match metrics
            .entry(Arc::from(name))
            .or_insert_with_key(|k| Metric::Histogram(Histogram::with_name(k.clone())))
        {
            Metric::Histogram(h) => h.clone(),
            other => kind_clash(name, "histogram", other.kind()),
        }
    }

    /// Renders every metric in Prometheus text exposition style, names
    /// sorted. Histograms emit cumulative `_bucket{le="..."}` lines for
    /// occupied buckets (plus `+Inf`), `_sum`, `_count`, and a comment
    /// with derived p50/p90/p99 for human readers.
    pub fn render(&self) -> String {
        let metrics: Vec<(Arc<str>, Metric)> = {
            let map = self.inner.metrics.lock().expect("registry lock");
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let mut out = String::new();
        for (name, metric) in metrics {
            let _ = writeln!(out, "# TYPE {name} {}", metric.kind());
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "# {name}: p50={} p90={} p99={} max={}",
                        h.quantile(0.5),
                        h.quantile(0.9),
                        h.quantile(0.99),
                        h.max()
                    );
                    let mut cumulative = 0u64;
                    for (i, n) in h.buckets().iter().enumerate() {
                        if *n == 0 {
                            continue;
                        }
                        cumulative += n;
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{le=\"{}\"}} {cumulative}",
                            bucket_bound(i)
                        );
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_storage_by_name() {
        let r = Registry::new();
        r.counter("nvc_a_total").add(3);
        r.counter("nvc_a_total").add(4);
        assert_eq!(r.counter("nvc_a_total").get(), 7);
        r.gauge("nvc_g").set(-2);
        assert_eq!(r.gauge("nvc_g").get(), -2);
        r.histogram("nvc_h_us").record(10);
        assert_eq!(r.histogram("nvc_h_us").count(), 1);
    }

    #[test]
    fn registries_are_isolated() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("nvc_x_total").inc();
        assert_eq!(b.counter("nvc_x_total").get(), 0);
    }

    #[test]
    #[should_panic(expected = "is a counter, requested as gauge")]
    fn kind_clash_panics() {
        let r = Registry::new();
        r.counter("nvc_clash").inc();
        r.gauge("nvc_clash");
    }

    #[test]
    fn render_emits_prometheus_text() {
        let r = Registry::new();
        r.counter("nvc_frames_total").add(5);
        r.gauge("nvc_active").set(3);
        let h = r.histogram("nvc_lat_us");
        h.record(0);
        h.record(3);
        h.record(1000);
        let text = r.render();
        assert!(text.contains("# TYPE nvc_frames_total counter\nnvc_frames_total 5\n"));
        assert!(text.contains("# TYPE nvc_active gauge\nnvc_active 3\n"));
        assert!(text.contains("# TYPE nvc_lat_us histogram\n"));
        assert!(text.contains("nvc_lat_us_bucket{le=\"0\"} 1\n"), "{text}");
        assert!(
            text.contains("nvc_lat_us_bucket{le=\"3\"} 2\n"),
            "cumulative"
        );
        assert!(text.contains("nvc_lat_us_bucket{le=\"1023\"} 3\n"));
        assert!(text.contains("nvc_lat_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("nvc_lat_us_sum 1003\n"));
        assert!(text.contains("nvc_lat_us_count 3\n"));
    }
}
