//! Span timers and the per-thread rings their records land in.

use crate::epoch_micros;
use crate::metric::Histogram;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// Records kept per thread; old spans fall off the back. Sized so a
/// snapshot shows the last few scheduling quanta of every thread
/// without the rings ever mattering for memory.
const RING_CAP: usize = 128;

/// One completed span: which histogram timed it, when it started
/// (microseconds since the telemetry epoch) and how long it ran.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The owning histogram's metric name.
    pub name: Arc<str>,
    /// Start time, microseconds since [`epoch_micros`]'s epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

#[derive(Debug, Default)]
struct SpanRing {
    records: Mutex<VecDeque<SpanRecord>>,
}

impl SpanRing {
    fn push(&self, rec: SpanRecord) {
        let mut records = self.records.lock().expect("span ring lock");
        if records.len() == RING_CAP {
            records.pop_front();
        }
        records.push_back(rec);
    }
}

/// Every live thread ring, weakly held so exited threads clean up.
static RINGS: Mutex<Vec<Weak<SpanRing>>> = Mutex::new(Vec::new());

fn thread_ring() -> Arc<SpanRing> {
    thread_local! {
        static RING: Arc<SpanRing> = {
            let ring = Arc::new(SpanRing::default());
            let mut rings = RINGS.lock().expect("span rings lock");
            rings.retain(|w| w.strong_count() > 0);
            rings.push(Arc::downgrade(&ring));
            ring
        };
    }
    RING.with(Arc::clone)
}

/// The most recent spans across all threads, newest first, at most
/// `max` of them. A diagnostic view — the rings are bounded, so this is
/// the tail of activity, not a complete trace.
pub fn recent_spans(max: usize) -> Vec<SpanRecord> {
    let rings: Vec<Arc<SpanRing>> = RINGS
        .lock()
        .expect("span rings lock")
        .iter()
        .filter_map(Weak::upgrade)
        .collect();
    let mut all: Vec<SpanRecord> = rings
        .iter()
        .flat_map(|r| {
            r.records
                .lock()
                .expect("span ring lock")
                .iter()
                .cloned()
                .collect::<Vec<_>>()
        })
        .collect();
    all.sort_by_key(|r| std::cmp::Reverse(r.start_us));
    all.truncate(max);
    all
}

/// RAII timer from [`Histogram::time`]: on drop, records the elapsed
/// microseconds into the histogram and the current thread's span ring.
#[derive(Debug)]
pub struct SpanGuard {
    hist: Histogram,
    start: Instant,
    start_us: u64,
}

impl SpanGuard {
    pub(crate) fn new(hist: Histogram, start: Instant) -> Self {
        SpanGuard {
            hist,
            start,
            start_us: epoch_micros(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_us = self.start.elapsed().as_micros() as u64;
        self.hist.record(dur_us);
        thread_ring().push(SpanRecord {
            name: Arc::from(self.hist.name()),
            start_us: self.start_us,
            dur_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_land_in_histogram_and_ring() {
        let _guard = crate::mode_test_lock();
        crate::set_mode(crate::Mode::Full);
        let h = Histogram::detached("nvc_test_span_us");
        {
            let _span = h.time();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1_000, "a 2ms span is at least 1000us");
        let spans = recent_spans(16);
        assert!(
            spans.iter().any(|s| &*s.name == "nvc_test_span_us"),
            "span visible in recent_spans"
        );
    }

    #[test]
    fn spans_are_inert_when_off() {
        let _guard = crate::mode_test_lock();
        crate::set_mode(crate::Mode::Off);
        let h = Histogram::detached("nvc_test_off_us");
        assert!(h.time().is_none());
        crate::set_mode(crate::Mode::Full);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn ring_is_bounded() {
        let _guard = crate::mode_test_lock();
        crate::set_mode(crate::Mode::Full);
        let h = Histogram::detached("nvc_test_ring_us");
        // Overflow one thread's ring; the ring keeps only the tail.
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..(RING_CAP + 50) {
                    drop(h.time());
                }
                let mine: usize = recent_spans(usize::MAX)
                    .iter()
                    .filter(|r| &*r.name == "nvc_test_ring_us")
                    .count();
                assert!(mine <= RING_CAP, "ring capped at {RING_CAP}, saw {mine}");
                assert!(mine >= RING_CAP / 2, "tail retained");
            });
        });
        assert_eq!(
            h.count() as usize,
            RING_CAP + 50,
            "histogram sees every span"
        );
    }
}
