//! The three metric kinds: sharded [`Counter`], [`Gauge`], and the
//! fixed-log2-bucket [`Histogram`].

use crate::span::SpanGuard;
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shard count for [`Counter`]. Eight padded lines absorb the worst
/// contention the workspace produces (a dozen workers bumping the same
/// frame counter); `get` sums all eight, so the total stays exact.
const COUNTER_SHARDS: usize = 8;

/// Bucket count of [`Histogram`]: one bucket per possible bit-length of
/// a `u64` (0..=64). Bucket 0 holds exactly the value 0; bucket `i > 0`
/// holds values in `[2^(i-1), 2^i)`.
pub const HIST_BUCKETS: usize = 65;

/// The shard a thread's counter increments land in. Assigned round-robin
/// on first use per thread, so long-lived worker threads spread evenly.
fn shard_index() -> usize {
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut i = s.get();
        if i == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            // order: Relaxed — only uniqueness of the ticket matters.
            i = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            s.set(i);
        }
        i
    })
}

/// One cache line's worth of counter, so neighbouring shards never
/// false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

#[derive(Debug, Default)]
pub(crate) struct CounterInner {
    shards: [PaddedU64; COUNTER_SHARDS],
}

/// A monotonic counter sharded across cache-line-padded atomics.
///
/// Handles are cheap clones of one shared value; every clone obtained
/// from a [`Registry`](crate::Registry) under the same name observes the
/// same total. Increments are relaxed atomics on the calling thread's
/// shard; [`get`](Counter::get) sums the shards and is exact (each
/// increment lands in exactly one shard).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

impl Counter {
    /// A counter not attached to any registry (starts at zero).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // order: Relaxed — pure statistics; counters never guard data.
        self.inner.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The exact total across all shards.
    pub fn get(&self) -> u64 {
        // order: Relaxed — a statistical snapshot; shard loads need no
        // mutual ordering.
        self.inner
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A signed instantaneous value: one atomic, no shards (gauges are
/// read-modify-write — `try_inc` must see the true current value).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    inner: Arc<AtomicI64>,
}

impl Gauge {
    /// A gauge not attached to any registry (starts at zero).
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        // order: Relaxed — a lone observable value, no guarded data.
        self.inner.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        // order: Relaxed — atomic RMW keeps the count exact; ordering
        // against other memory is not needed.
        self.inner.fetch_add(d, Ordering::Relaxed);
    }

    /// Subtracts `d`.
    pub fn sub(&self, d: i64) {
        // order: Relaxed — see `add`.
        self.inner.fetch_sub(d, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is currently lower — a high-water
    /// mark.
    pub fn record_max(&self, v: i64) {
        // order: Relaxed — the max is exact via the RMW itself.
        self.inner.fetch_max(v, Ordering::Relaxed);
    }

    /// Atomically increments if the result would not exceed `limit`;
    /// returns whether the slot was taken. This is the capacity
    /// admission primitive: session and subscriber caps reserve a slot
    /// with it before doing any work.
    pub fn try_inc(&self, limit: i64) -> bool {
        // order: SeqCst — admission slots must interleave in one total
        // order so concurrent reservations can never oversubscribe the
        // cap; the conservative choice on a cold path.
        self.inner
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < limit).then_some(n + 1)
            })
            .is_ok()
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        // order: Relaxed — a statistical snapshot.
        self.inner.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
pub(crate) struct HistogramInner {
    /// Rendered metric name; also labels span records from
    /// [`Histogram::time`].
    name: Arc<str>,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A histogram with 65 fixed log2 buckets: recording a `u64` is a
/// bit-length computation plus relaxed adds, and quantiles come from a
/// cumulative bucket walk — no allocation, no locks, no configuration.
///
/// Bucket `i > 0` covers `[2^(i-1), 2^i)`; bucket 0 covers exactly 0.
/// A quantile estimate returns its bucket's inclusive upper bound, so
/// estimates are conservative (never below the true quantile) and at
/// most 2x it. The exact maximum is tracked separately
/// ([`max`](Histogram::max)).
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

/// The log2 bucket a value lands in: its bit length.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i`.
pub(crate) fn bucket_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    pub(crate) fn with_name(name: Arc<str>) -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                name,
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// A histogram not attached to any registry — for injection into
    /// components under test.
    pub fn detached(name: &str) -> Self {
        Histogram::with_name(Arc::from(name))
    }

    /// The metric name (labels rendered lines and span records).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        // order: Relaxed — statistics; a scrape may see the bucket
        // before the count, which only skews one in-flight sample.
        self.inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        // order: Relaxed — as above.
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        // order: Relaxed — as above.
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        // order: Relaxed — as above.
        self.inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Starts a span timer: the returned guard records the elapsed
    /// microseconds into this histogram (and the thread's span ring) on
    /// drop. Returns `None` when the global [`Mode`](crate::Mode) gates
    /// this span out — the disabled path is one relaxed load and a
    /// branch, with no clock read.
    pub fn time(&self) -> Option<SpanGuard> {
        if crate::span_pass() {
            Some(SpanGuard::new(self.clone(), Instant::now()))
        } else {
            None
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        // order: Relaxed — a statistical snapshot.
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> u64 {
        // order: Relaxed — a statistical snapshot.
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded observation (exact, not bucketed).
    pub fn max(&self) -> u64 {
        // order: Relaxed — a statistical snapshot.
        self.inner.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the inclusive upper bound of
    /// the bucket holding that rank; 0 when empty. `quantile(0.5)` is
    /// p50, `quantile(0.99)` p99.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.inner.buckets.iter().enumerate() {
            // order: Relaxed — a statistical snapshot.
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(HIST_BUCKETS - 1)
    }

    /// Per-bucket counts, index = bit length of the values it holds.
    pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
        // order: Relaxed — a statistical snapshot.
        std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sum_is_exact_under_contention() {
        let c = Counter::detached();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000, "no increment may be lost or doubled");
    }

    #[test]
    fn gauge_try_inc_respects_limit() {
        let g = Gauge::detached();
        assert!(g.try_inc(2));
        assert!(g.try_inc(2));
        assert!(!g.try_inc(2), "third slot must be refused at limit 2");
        g.sub(1);
        assert!(g.try_inc(2), "freed slot is grantable again");
        g.record_max(10);
        assert_eq!(g.get(), 10);
        g.record_max(3);
        assert_eq!(g.get(), 10, "record_max never lowers");
    }

    #[test]
    fn gauge_try_inc_is_exact_under_contention() {
        let g = Gauge::detached();
        let granted = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        if g.try_inc(100) {
                            granted.fetch_add(1, Ordering::Relaxed);
                            g.sub(1);
                        }
                    }
                });
            }
        });
        assert_eq!(g.get(), 0, "every grant was returned");
        assert!(granted.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::detached("t");
        // One value at each power-of-two boundary and its neighbour.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let b = h.buckets();
        assert_eq!(b[0], 1, "bucket 0 holds exactly the value 0");
        assert_eq!(b[1], 1, "value 1 has bit length 1");
        assert_eq!(b[2], 2, "2 and 3 share bucket 2");
        assert_eq!(b[3], 2, "4 and 7 share bucket 3");
        assert_eq!(b[4], 1, "8 opens bucket 4");
        assert_eq!(b[10], 1, "1023 closes bucket 10");
        assert_eq!(b[11], 1, "1024 opens bucket 11");
        assert_eq!(b[64], 1, "u64::MAX lands in the last bucket");
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_are_conservative_upper_bounds() {
        let h = Histogram::detached("t");
        for v in 1..=100u64 {
            h.record(v);
        }
        // True p50 is 50 → bucket 6 (values 32..=63) → bound 63.
        assert_eq!(h.quantile(0.5), 63);
        // True p99 is 99 → bucket 7 (values 64..=127) → bound 127.
        assert_eq!(h.quantile(0.99), 127);
        // Quantile never undershoots the true value and is within 2x.
        for (q, truth) in [(0.25, 25u64), (0.75, 75), (1.0, 100)] {
            let est = h.quantile(q);
            assert!(est >= truth && est < truth * 2, "q={q}: {est} vs {truth}");
        }
        assert_eq!(h.quantile(0.0), 1, "rank clamps to the first sample");
        assert_eq!(Histogram::detached("e").quantile(0.5), 0, "empty → 0");
    }

    #[test]
    fn histogram_sum_and_count_track_records() {
        let h = Histogram::detached("t");
        h.record(5);
        h.record(7);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 12);
    }
}
