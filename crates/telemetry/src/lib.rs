//! `nvc-telemetry` — a std-only metrics and tracing layer cheap enough
//! for the workspace's hot paths.
//!
//! Three metric kinds, all lock-free on the record path:
//!
//! * [`Counter`] — a monotonic sum sharded across cache-line-padded
//!   atomics; threads hash to shards so contended increments don't
//!   bounce one line, and [`Counter::get`] sums the shards for an
//!   *exact* total (no sampling, no loss).
//! * [`Gauge`] — a single signed atomic with set/add and a CAS-based
//!   [`Gauge::try_inc`] for capacity admission.
//! * [`Histogram`] — 65 fixed log2 buckets (bucket *i* holds values of
//!   bit-length *i*), so recording is a `leading_zeros` plus three
//!   relaxed adds and p50/p90/p99 fall out of a bucket walk
//!   ([`Histogram::quantile`]).
//!
//! Metrics live in a [`Registry`]: either the process-wide
//! [`Registry::global`] (kernel and codec instrumentation) or an owned
//! instance (each server owns one, so multiple servers in one process
//! don't bleed into each other). [`Registry::render`] emits a
//! Prometheus-style text snapshot.
//!
//! On top of histograms sit *span timers* ([`Histogram::time`]): an RAII
//! guard that records the elapsed microseconds into the histogram and
//! appends a [`SpanRecord`] to a per-thread ring buffer
//! ([`recent_spans`] collects the rings). Spans are gated by the global
//! [`Mode`] — `Off` reduces [`Histogram::time`] to one relaxed load and
//! a branch, `Sampled(n)` keeps every *n*-th span — while counters,
//! gauges and direct `record` calls are always live (they back
//! shutdown reports and admission decisions, not just introspection).
//!
//! Telemetry never touches data it observes: instrumented code paths
//! produce bit-identical results with telemetry off, on, or sampled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metric;
mod registry;
mod span;

pub use metric::{Counter, Gauge, Histogram, HIST_BUCKETS};
pub use registry::Registry;
pub use span::{recent_spans, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// How much the span-timer layer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Span timers are inert: [`Histogram::time`] is one relaxed load
    /// and a branch. Counters, gauges and direct records stay live.
    Off,
    /// Every span is recorded.
    Full,
    /// Every *n*-th span per thread is recorded (`Sampled(1)` is
    /// `Full`; `Sampled(0)` normalizes to `Full`).
    Sampled(u32),
}

/// `0 = Off`, `1 = Full`, `n >= 2 = Sampled(n)`.
static MODE: AtomicU32 = AtomicU32::new(1);

/// Sets the global span-recording [`Mode`]. Takes effect immediately on
/// every thread; spans already in flight record under the mode they
/// started with.
pub fn set_mode(mode: Mode) {
    let raw = match mode {
        Mode::Off => 0,
        Mode::Full | Mode::Sampled(0) | Mode::Sampled(1) => 1,
        Mode::Sampled(n) => n,
    };
    // order: Relaxed — a lone mode flag; readers only need to see the
    // new value eventually, nothing else is published with it.
    MODE.store(raw, Ordering::Relaxed);
}

/// The current global span-recording [`Mode`].
pub fn mode() -> Mode {
    // order: Relaxed — see `set_mode`; no associated data to acquire.
    match MODE.load(Ordering::Relaxed) {
        0 => Mode::Off,
        1 => Mode::Full,
        n => Mode::Sampled(n),
    }
}

/// One sampling decision: should the span about to start be recorded?
/// `Off` is a single relaxed load; `Sampled(n)` bumps a per-thread
/// counter so each thread keeps every n-th span.
pub(crate) fn span_pass() -> bool {
    // order: Relaxed — see `set_mode`; the hot gating load.
    match MODE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        n => {
            use std::cell::Cell;
            thread_local! {
                static TICK: Cell<u32> = const { Cell::new(0) };
            }
            TICK.with(|t| {
                let v = t.get().wrapping_add(1);
                if v >= n {
                    t.set(0);
                    true
                } else {
                    t.set(v);
                    false
                }
            })
        }
    }
}

/// Microseconds since the process's telemetry epoch (the first call to
/// this function). Span records and wake timestamps share this base so
/// cross-thread deltas are meaningful.
pub fn epoch_micros() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().saturating_duration_since(epoch).as_micros() as u64
}

/// [`Registry::global`]'s counter shorthand.
pub fn counter(name: &str) -> Counter {
    Registry::global().counter(name)
}

/// [`Registry::global`]'s gauge shorthand.
pub fn gauge(name: &str) -> Gauge {
    Registry::global().gauge(name)
}

/// [`Registry::global`]'s histogram shorthand.
pub fn histogram(name: &str) -> Histogram {
    Registry::global().histogram(name)
}

/// Serializes unit tests that read or mutate the global [`Mode`], which
/// would otherwise race under the parallel test runner.
#[cfg(test)]
pub(crate) fn mode_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_roundtrips_normalizes_and_samples() {
        let _guard = mode_test_lock();
        set_mode(Mode::Sampled(4));
        assert_eq!(mode(), Mode::Sampled(4));
        set_mode(Mode::Sampled(1));
        assert_eq!(mode(), Mode::Full);
        set_mode(Mode::Off);
        assert_eq!(mode(), Mode::Off);
        assert!(!span_pass());
        set_mode(Mode::Sampled(3));
        let kept = (0..9).filter(|_| span_pass()).count();
        set_mode(Mode::Full);
        assert!(span_pass());
        assert_eq!(kept, 3, "every 3rd of 9 decisions passes");
    }

    #[test]
    fn epoch_is_monotonic() {
        let a = epoch_micros();
        let b = epoch_micros();
        assert!(b >= a);
    }
}
