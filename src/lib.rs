//! Workspace umbrella crate for the NVCA reproduction.
//!
//! Re-exports the member crates so examples and integration tests can use
//! a single dependency. See the individual crates for the real APIs.

#![forbid(unsafe_code)]

pub use nvc_baseline as baseline;
pub use nvc_core as exec;
pub use nvc_entropy as entropy;
pub use nvc_fastalg as fastalg;
pub use nvc_model as model;
pub use nvc_quant as quant;
pub use nvc_serve as serve;
pub use nvc_sim as sim;
pub use nvc_telemetry as telemetry;
pub use nvc_tensor as tensor;
pub use nvc_video as video;
pub use nvca as core;
