//! Cross-crate integration tests: the full pipeline from synthetic video
//! through the CTVC codec onto the NVCA simulator, plus the Table I
//! ordering the reproduction promises.

use nvc_baseline::{HybridCodec, Profile};
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_sim::Dataflow;
use nvc_video::bdrate::bd_rate;
use nvc_video::codec::{stream_roundtrip, DecoderSession, VideoCodec};
use nvc_video::metrics::psnr_sequence;
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::Sequence;
use nvca::{FrameKind, Nvca};

fn mean_psnr(a: &Sequence, b: &Sequence) -> f64 {
    let pairs: Vec<_> = a.frames().iter().zip(b.frames()).collect();
    psnr_sequence(&pairs.iter().map(|(x, y)| (*x, *y)).collect::<Vec<_>>()).unwrap()
}

/// The full co-design loop: encode on the model, decode, and check the
/// hardware report for the same configuration.
#[test]
fn codesign_pipeline_end_to_end() {
    let seq = Synthesizer::new(SceneConfig::uvg_like(64, 48, 3)).generate();
    let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(8)).unwrap();
    let coded = nvca.codec().encode(&seq, RatePoint::new(1)).unwrap();
    let decoded = nvca.codec().decode(&coded.bitstream).unwrap();
    assert_eq!(decoded.frames().len(), 3);
    assert!(mean_psnr(&seq, &decoded) > 22.0);
    // The simulated accelerator runs the same network shape.
    let report = nvca.simulate_decode(1088, 1920, Dataflow::Chained);
    assert!(report.fps > 1.0);
    assert!(report.dram_bytes > 0);
}

/// The streaming-session contract, written once, generically over the
/// [`VideoCodec`] trait, and checked against both codec families:
///
/// 1. streaming decode of the packets produced by a streaming encode is
///    bit-exact with the one-shot decode of the concatenated bitstream;
/// 2. truncating or corrupting a packet yields an `Err`, never a panic.
fn assert_streaming_contract<C: VideoCodec>(codec: &C, seq: &Sequence, rate: C::Rate) {
    // (1) Streaming roundtrip matches the encoder's closed loop exactly…
    let (coded, drift) = stream_roundtrip(codec, seq, rate).expect("stream roundtrip");
    assert_eq!(
        drift,
        0.0,
        "{}: streaming decode drifted",
        codec.codec_name()
    );
    // …and the one-shot wrapper decodes the very same packets identically.
    let bitstream = coded.to_bytes();
    let one_shot = nvc_video::codec::decode_bitstream(codec, &bitstream).expect("one-shot decode");
    assert_eq!(one_shot.frames().len(), coded.decoded.frames().len());
    for (a, b) in one_shot.frames().iter().zip(coded.decoded.frames()) {
        assert_eq!(
            a.tensor().as_slice(),
            b.tensor().as_slice(),
            "{}: one-shot decode differs from streaming",
            codec.codec_name()
        );
    }

    // (2) Malformed packets error instead of panicking.
    let first = coded.packets[0].to_bytes();
    for cut in [0, 5, first.len() / 2, first.len() - 1] {
        let mut dec = codec.start_decode();
        assert!(
            dec.push_packet(&first[..cut]).is_err(),
            "{}: truncation to {cut} bytes must fail",
            codec.codec_name()
        );
    }
    for victim in [13, first.len() - 1] {
        let mut corrupt = first.clone();
        corrupt[victim] ^= 0xA5;
        let mut dec = codec.start_decode();
        assert!(
            dec.push_packet(&corrupt).is_err(),
            "{}: corrupted byte {victim} must fail",
            codec.codec_name()
        );
    }
}

#[test]
fn streaming_contract_holds_for_both_codec_families() {
    let seq = Synthesizer::new(SceneConfig::uvg_like(48, 32, 4)).generate();
    assert_streaming_contract(
        &CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap(),
        &seq,
        RatePoint::new(1),
    );
    assert_streaming_contract(
        &CtvcCodec::new(CtvcConfig::ctvc_sparse(8)).unwrap(),
        &seq,
        RatePoint::new(2),
    );
    assert_streaming_contract(&HybridCodec::new(Profile::hevc_like()), &seq, 24u8);
    assert_streaming_contract(&HybridCodec::new(Profile::avc_like()), &seq, 30u8);
}

/// Live-pipeline shape: packets stream from an encoder session straight
/// into both the functional decoder session and the accelerator
/// simulator, one frame at a time.
#[test]
fn streamed_packets_drive_the_simulator() {
    let seq = Synthesizer::new(SceneConfig::uvg_like(48, 32, 3)).generate();
    let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(8)).unwrap();
    let coded = nvca.codec().encode(&seq, RatePoint::new(1)).unwrap();
    let rep = nvca
        .simulate_decode_stream(&coded.bitstream, Dataflow::Chained)
        .unwrap();
    assert_eq!(rep.frames.len(), seq.frames().len());
    assert_eq!(rep.frames[0].kind, FrameKind::Intra);
    assert!(rep.fps > 0.0);
    // Intra packets charge only the reconstruction module.
    assert!(rep.frames[0].report.total_cycles < rep.frames[1].report.total_cycles);
}

/// The worker-pool execution engine is bit-exact across thread counts
/// for **both codec families**: same packets, same reconstructions.
#[test]
fn parallel_execution_is_bit_exact_for_both_codec_families() {
    let seq = Synthesizer::new(SceneConfig::uvg_like(48, 32, 3)).generate();

    // Learned codec: serial vs 4-thread sessions.
    let serial = CtvcCodec::new(CtvcConfig::ctvc_sparse(8).with_threads(1)).unwrap();
    let parallel = CtvcCodec::new(CtvcConfig::ctvc_sparse(8).with_threads(4)).unwrap();
    let cs = serial.encode(&seq, RatePoint::new(1)).unwrap();
    let cp = parallel.encode(&seq, RatePoint::new(1)).unwrap();
    assert_eq!(cs.bitstream, cp.bitstream, "CTVC packets diverged");
    for (a, b) in cs.decoded.frames().iter().zip(cp.decoded.frames()) {
        assert_eq!(a.tensor().as_slice(), b.tensor().as_slice());
    }
    let ds = serial.decode(&cp.bitstream).unwrap();
    let dp = parallel.decode(&cs.bitstream).unwrap();
    for (a, b) in ds.frames().iter().zip(dp.frames()) {
        assert_eq!(a.tensor().as_slice(), b.tensor().as_slice());
    }

    // Classical codec: parallel motion estimation must produce the same
    // decisions, hence the same bitstream.
    let hs = HybridCodec::with_threads(Profile::hevc_like(), 1);
    let hp = HybridCodec::with_threads(Profile::hevc_like(), 4);
    let cs = hs.encode(&seq, 24).unwrap();
    let cp = hp.encode(&seq, 24).unwrap();
    assert_eq!(cs.bitstream, cp.bitstream, "hybrid packets diverged");
    for (a, b) in cs.decoded.frames().iter().zip(cp.decoded.frames()) {
        assert_eq!(a.tensor().as_slice(), b.tensor().as_slice());
    }
}

/// Bitstreams are portable across codec instances built from the same
/// configuration (decoder state is reconstructed, not shared).
#[test]
fn bitstreams_are_portable_across_instances() {
    let seq = Synthesizer::new(SceneConfig::mcl_jcv_like(48, 32, 3)).generate();
    let enc = CtvcCodec::new(CtvcConfig::ctvc_fxp(8)).unwrap();
    let coded = enc.encode(&seq, RatePoint::new(2)).unwrap();
    let dec = CtvcCodec::new(CtvcConfig::ctvc_fxp(8)).unwrap();
    let decoded = dec.decode(&coded.bitstream).unwrap();
    for (a, b) in decoded.frames().iter().zip(coded.decoded.frames()) {
        assert!(a.tensor().sub(b.tensor()).unwrap().max_abs() < 1e-6);
    }
}

/// Table I ordering, restricted to what the reproduction can promise
/// without trained weights (see EXPERIMENTS.md §E1): the classical
/// generation gap (AVC-like loses to the anchor), the learned-ladder
/// ordering (CTVC beats its DVC-like ablation), and the paper's central
/// rate mechanism — CTVC P-frames cost a fraction of classical P-frames.
#[test]
fn table1_ordering_holds() {
    let seq = Synthesizer::new(SceneConfig::uvg_like(96, 64, 8)).generate();

    // Mid QPs: at ultra-coarse QPs per-block overheads dominate and the
    // bigger AVC partitions artificially win; the generation gap the
    // profiles model lives in the moderate-rate regime.
    let anchor_codec = HybridCodec::new(Profile::hevc_like());
    let anchor: Vec<(f64, f64)> = [40u8, 34, 28, 22]
        .iter()
        .map(|&qp| {
            let c = anchor_codec.encode(&seq, qp).unwrap();
            (c.bpp, mean_psnr(&seq, &c.decoded))
        })
        .collect();

    let avc: Vec<(f64, f64)> = [40u8, 34, 28, 22]
        .iter()
        .map(|&qp| {
            let c = HybridCodec::new(Profile::avc_like())
                .encode(&seq, qp)
                .unwrap();
            (c.bpp, mean_psnr(&seq, &c.decoded))
        })
        .collect();

    // Generation gap: AVC-like needs more rate than the anchor.
    if let Ok(bd_avc) = bd_rate(&anchor, &avc) {
        assert!(
            bd_avc > 0.0,
            "AVC-like must lose to the anchor, got {bd_avc:.1}%"
        );
    }

    // Learned ladder: full CTVC beats the DVC-like ablation at the same
    // rate point (better PSNR at comparable-or-lower rate, or lower rate
    // at comparable PSNR).
    let ctvc = CtvcCodec::new(CtvcConfig::ctvc_fp(12)).unwrap();
    let dvc = CtvcCodec::new(CtvcConfig::dvc_like(12)).unwrap();
    let c_ctvc = ctvc.encode(&seq, RatePoint::new(1)).unwrap();
    let c_dvc = dvc.encode(&seq, RatePoint::new(1)).unwrap();
    let p_ctvc = mean_psnr(&seq, &c_ctvc.decoded);
    let p_dvc = mean_psnr(&seq, &c_dvc.decoded);
    assert!(
        p_ctvc > p_dvc - 0.1,
        "CTVC ({p_ctvc:.2} dB) must not lose to DVC-like ({p_dvc:.2} dB)"
    );

    // The rate mechanism: CTVC P-frames are much cheaper than classical
    // P-frames at comparable quality.
    let anchor_coded = anchor_codec.encode(&seq, 46).unwrap();
    let anchor_p: f64 = anchor_coded.bytes_per_frame[1..]
        .iter()
        .map(|&b| b as f64)
        .sum::<f64>()
        / (anchor_coded.bytes_per_frame.len() - 1) as f64;
    let ctvc_p: f64 = c_ctvc.bytes_per_frame[1..]
        .iter()
        .map(|&b| b as f64)
        .sum::<f64>()
        / (c_ctvc.bytes_per_frame.len() - 1) as f64;
    assert!(
        ctvc_p < anchor_p,
        "CTVC P-frames ({ctvc_p:.0} B) must undercut classical P-frames ({anchor_p:.0} B)"
    );
}

/// The hardware side of the story: chaining reduces traffic, sparsity
/// reduces area, and the design point sustains real-time-class decode.
#[test]
fn hardware_story_holds() {
    let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(36)).unwrap();
    let lbl = nvca.simulate_decode(1088, 1920, Dataflow::LayerByLayer);
    let ch = nvca.simulate_decode(1088, 1920, Dataflow::Chained);
    assert!(ch.dram_bytes < lbl.dram_bytes);
    assert!(ch.fps > lbl.fps);
    assert!(ch.fps > 20.0, "real-time-class decode, got {:.1}", ch.fps);

    let rows = nvca::offchip_comparison(&nvca, 1088, 1920);
    assert_eq!(rows.len(), 5);
    let overall: f64 = 1.0
        - rows.iter().map(|r| r.chained_bytes).sum::<u64>() as f64
            / rows.iter().map(|r| r.baseline_bytes).sum::<u64>() as f64;
    assert!(overall > 0.2, "overall reduction {:.2}", overall);
}

/// FXP deployment must stay close to FP in end-to-end quality — the
/// premise of Table I's FXP row.
#[test]
fn fxp_tracks_fp_quality() {
    let seq = Synthesizer::new(SceneConfig::hevc_b_like(64, 48, 3)).generate();
    let fp = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let fxp = CtvcCodec::new(CtvcConfig::ctvc_fxp(8)).unwrap();
    let cfp = fp.encode(&seq, RatePoint::new(1)).unwrap();
    let cfxp = fxp.encode(&seq, RatePoint::new(1)).unwrap();
    let dp = mean_psnr(&seq, &cfp.decoded);
    let dq = mean_psnr(&seq, &cfxp.decoded);
    assert!(dp - dq < 2.0, "FXP must track FP: {dq:.2} vs {dp:.2} dB");
}
