//! Cross-crate integration tests: the full pipeline from synthetic video
//! through the CTVC codec onto the NVCA simulator, plus the Table I
//! ordering the reproduction promises.

use nvc_baseline::{HybridCodec, Profile};
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_sim::Dataflow;
use nvc_video::bdrate::bd_rate;
use nvc_video::metrics::psnr_sequence;
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::Sequence;
use nvca::Nvca;

fn mean_psnr(a: &Sequence, b: &Sequence) -> f64 {
    let pairs: Vec<_> = a.frames().iter().zip(b.frames()).collect();
    psnr_sequence(&pairs.iter().map(|(x, y)| (*x, *y)).collect::<Vec<_>>()).unwrap()
}

/// The full co-design loop: encode on the model, decode, and check the
/// hardware report for the same configuration.
#[test]
fn codesign_pipeline_end_to_end() {
    let seq = Synthesizer::new(SceneConfig::uvg_like(64, 48, 3)).generate();
    let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(8)).unwrap();
    let coded = nvca.codec().encode(&seq, RatePoint::new(1)).unwrap();
    let decoded = nvca.codec().decode(&coded.bitstream).unwrap();
    assert_eq!(decoded.frames().len(), 3);
    assert!(mean_psnr(&seq, &decoded) > 22.0);
    // The simulated accelerator runs the same network shape.
    let report = nvca.simulate_decode(1088, 1920, Dataflow::Chained);
    assert!(report.fps > 1.0);
    assert!(report.dram_bytes > 0);
}

/// Bitstreams are portable across codec instances built from the same
/// configuration (decoder state is reconstructed, not shared).
#[test]
fn bitstreams_are_portable_across_instances() {
    let seq = Synthesizer::new(SceneConfig::mcl_jcv_like(48, 32, 3)).generate();
    let enc = CtvcCodec::new(CtvcConfig::ctvc_fxp(8)).unwrap();
    let coded = enc.encode(&seq, RatePoint::new(2)).unwrap();
    let dec = CtvcCodec::new(CtvcConfig::ctvc_fxp(8)).unwrap();
    let decoded = dec.decode(&coded.bitstream).unwrap();
    for (a, b) in decoded.frames().iter().zip(coded.decoded.frames()) {
        assert!(a.tensor().sub(b.tensor()).unwrap().max_abs() < 1e-6);
    }
}

/// Table I ordering, restricted to what the reproduction can promise
/// without trained weights (see EXPERIMENTS.md §E1): the classical
/// generation gap (AVC-like loses to the anchor), the learned-ladder
/// ordering (CTVC beats its DVC-like ablation), and the paper's central
/// rate mechanism — CTVC P-frames cost a fraction of classical P-frames.
#[test]
fn table1_ordering_holds() {
    let seq = Synthesizer::new(SceneConfig::uvg_like(96, 64, 8)).generate();

    // Mid QPs: at ultra-coarse QPs per-block overheads dominate and the
    // bigger AVC partitions artificially win; the generation gap the
    // profiles model lives in the moderate-rate regime.
    let anchor_codec = HybridCodec::new(Profile::hevc_like());
    let anchor: Vec<(f64, f64)> = [40u8, 34, 28, 22]
        .iter()
        .map(|&qp| {
            let c = anchor_codec.encode(&seq, qp).unwrap();
            (c.bpp, mean_psnr(&seq, &c.decoded))
        })
        .collect();

    let avc: Vec<(f64, f64)> = [40u8, 34, 28, 22]
        .iter()
        .map(|&qp| {
            let c = HybridCodec::new(Profile::avc_like()).encode(&seq, qp).unwrap();
            (c.bpp, mean_psnr(&seq, &c.decoded))
        })
        .collect();

    // Generation gap: AVC-like needs more rate than the anchor.
    if let Ok(bd_avc) = bd_rate(&anchor, &avc) {
        assert!(bd_avc > 0.0, "AVC-like must lose to the anchor, got {bd_avc:.1}%");
    }

    // Learned ladder: full CTVC beats the DVC-like ablation at the same
    // rate point (better PSNR at comparable-or-lower rate, or lower rate
    // at comparable PSNR).
    let ctvc = CtvcCodec::new(CtvcConfig::ctvc_fp(12)).unwrap();
    let dvc = CtvcCodec::new(CtvcConfig::dvc_like(12)).unwrap();
    let c_ctvc = ctvc.encode(&seq, RatePoint::new(1)).unwrap();
    let c_dvc = dvc.encode(&seq, RatePoint::new(1)).unwrap();
    let p_ctvc = mean_psnr(&seq, &c_ctvc.decoded);
    let p_dvc = mean_psnr(&seq, &c_dvc.decoded);
    assert!(
        p_ctvc > p_dvc - 0.1,
        "CTVC ({p_ctvc:.2} dB) must not lose to DVC-like ({p_dvc:.2} dB)"
    );

    // The rate mechanism: CTVC P-frames are much cheaper than classical
    // P-frames at comparable quality.
    let anchor_coded = anchor_codec.encode(&seq, 46).unwrap();
    let anchor_p: f64 = anchor_coded.bytes_per_frame[1..]
        .iter()
        .map(|&b| b as f64)
        .sum::<f64>()
        / (anchor_coded.bytes_per_frame.len() - 1) as f64;
    let ctvc_p: f64 = c_ctvc.bytes_per_frame[1..].iter().map(|&b| b as f64).sum::<f64>()
        / (c_ctvc.bytes_per_frame.len() - 1) as f64;
    assert!(
        ctvc_p < anchor_p,
        "CTVC P-frames ({ctvc_p:.0} B) must undercut classical P-frames ({anchor_p:.0} B)"
    );
}

/// The hardware side of the story: chaining reduces traffic, sparsity
/// reduces area, and the design point sustains real-time-class decode.
#[test]
fn hardware_story_holds() {
    let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(36)).unwrap();
    let lbl = nvca.simulate_decode(1088, 1920, Dataflow::LayerByLayer);
    let ch = nvca.simulate_decode(1088, 1920, Dataflow::Chained);
    assert!(ch.dram_bytes < lbl.dram_bytes);
    assert!(ch.fps > lbl.fps);
    assert!(ch.fps > 20.0, "real-time-class decode, got {:.1}", ch.fps);

    let rows = nvca::offchip_comparison(&nvca, 1088, 1920);
    assert_eq!(rows.len(), 5);
    let overall: f64 = 1.0
        - rows.iter().map(|r| r.chained_bytes).sum::<u64>() as f64
            / rows.iter().map(|r| r.baseline_bytes).sum::<u64>() as f64;
    assert!(overall > 0.2, "overall reduction {:.2}", overall);
}

/// FXP deployment must stay close to FP in end-to-end quality — the
/// premise of Table I's FXP row.
#[test]
fn fxp_tracks_fp_quality() {
    let seq = Synthesizer::new(SceneConfig::hevc_b_like(64, 48, 3)).generate();
    let fp = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let fxp = CtvcCodec::new(CtvcConfig::ctvc_fxp(8)).unwrap();
    let cfp = fp.encode(&seq, RatePoint::new(1)).unwrap();
    let cfxp = fxp.encode(&seq, RatePoint::new(1)).unwrap();
    let dp = mean_psnr(&seq, &cfp.decoded);
    let dq = mean_psnr(&seq, &cfxp.decoded);
    assert!(dp - dq < 2.0, "FXP must track FP: {dq:.2} vs {dp:.2} dB");
}
