//! Closed-loop and per-frame rate control, end to end: mid-GOP rate
//! switches must decode bit-exactly, controllers must be deterministic
//! (replayable), the feedback plumbing must carry real bit counts, and
//! the target-bpp loop must steer (the ±10 % convergence *gate* runs in
//! release mode as `ratecontrol --quick`; here the cheap hybrid codec
//! proves convergence in-tree).

use nvc_baseline::{HybridCodec, Profile};
use nvc_entropy::container::FrameKind;
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_video::codec::{DecoderSession as _, EncoderSession as _};
use nvc_video::rate::{RateMode, RateRequest};
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::{Sequence, StreamStats, VideoCodec};

fn ctvc_seq(frames: usize) -> Sequence {
    Synthesizer::new(SceneConfig::uvg_like(48, 32, frames)).generate()
}

fn hybrid_seq(frames: usize) -> Sequence {
    Synthesizer::new(SceneConfig::uvg_like(64, 48, frames)).generate()
}

/// Encodes with per-GOP restarts, returning packets + stats.
fn encode_with_gops<C: VideoCodec>(
    codec: &C,
    seq: &Sequence,
    mode: RateMode<C::Rate>,
    gop: usize,
) -> (Vec<Vec<u8>>, StreamStats) {
    let mut enc = codec.start_encode(mode).unwrap();
    let mut packets = Vec::new();
    for (i, frame) in seq.frames().iter().enumerate() {
        if i > 0 && i % gop == 0 {
            assert!(enc.restart_gop(), "both codecs honor restart_gop");
        }
        packets.push(enc.push_frame(frame).unwrap().to_bytes());
    }
    (packets, enc.finish().unwrap())
}

fn decode_all<C: VideoCodec>(codec: &C, packets: &[Vec<u8>]) -> Vec<nvc_video::Frame> {
    let mut dec = codec.start_decode();
    packets
        .iter()
        .map(|p| dec.push_packet(p).unwrap())
        .collect()
}

/// Mid-GOP rate switches (no intra refresh) must keep the closed loop
/// bit-exact with the decoder for both codec families, and the chosen
/// rate must be visible per frame on both ends.
#[test]
fn mid_gop_rate_switch_is_bit_exact_on_both_families() {
    // CTVC: scripted per-frame RatePoint schedule, switching mid-GOP.
    let schedule = [1u8, 1, 2, 0];
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let seq = ctvc_seq(schedule.len());
    let mode = RateMode::per_frame(move |req: &RateRequest| {
        RatePoint::new(schedule[req.frame_index as usize])
    });
    let mut enc = codec.start_encode(mode);
    let mut packets = Vec::new();
    let mut recons = Vec::new();
    for frame in seq.frames() {
        packets.push(enc.push_frame(frame).unwrap().to_bytes());
        recons.push(enc.last_reconstruction().unwrap().clone());
    }
    let stats = enc.finish().unwrap();
    assert_eq!(stats.rate_per_frame, schedule);
    assert_eq!(
        stats.frame_types,
        vec![
            FrameKind::Intra,
            FrameKind::Predicted,
            FrameKind::Predicted,
            FrameKind::Predicted
        ],
        "a rate switch alone must not break the prediction chain"
    );
    let mut dec = codec.start_decode();
    for (i, (p, r)) in packets.iter().zip(&recons).enumerate() {
        let frame = dec.push_packet(p).unwrap();
        assert_eq!(
            frame.tensor().as_slice(),
            r.tensor().as_slice(),
            "frame {i}: decoder diverged across the rate switch"
        );
        assert_eq!(
            dec.last_rate(),
            Some(schedule[i]),
            "frame {i}: decoder must track the in-band rate"
        );
    }

    // Hybrid: QP schedule switching mid-GOP.
    let qps = [24u8, 24, 30, 20];
    let codec = HybridCodec::new(Profile::hevc_like());
    let seq = hybrid_seq(qps.len());
    let mode = RateMode::per_frame(move |req: &RateRequest| qps[req.frame_index as usize]);
    let mut enc = codec.start_encode(mode);
    let mut packets = Vec::new();
    let mut recons = Vec::new();
    for frame in seq.frames() {
        packets.push(enc.push_frame(frame).unwrap().to_bytes());
        recons.push(enc.last_reconstruction().unwrap().clone());
    }
    let stats = enc.finish().unwrap();
    assert_eq!(stats.rate_per_frame, qps);
    let mut dec = codec.start_decode();
    for (i, (p, r)) in packets.iter().zip(&recons).enumerate() {
        let frame = dec.push_packet(p).unwrap();
        assert_eq!(
            frame.tensor().as_slice(),
            r.tensor().as_slice(),
            "frame {i}: hybrid decoder diverged across the QP switch"
        );
        assert_eq!(dec.last_rate(), Some(qps[i]));
    }
}

/// The per-frame callback sees real feedback: the previous frame's
/// outcome must match the stream statistics bit for bit.
#[test]
fn per_frame_callback_receives_true_bit_feedback() {
    use std::sync::{Arc, Mutex};
    let observed = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&observed);
    let codec = HybridCodec::new(Profile::avc_like());
    let seq = hybrid_seq(4);
    let mode = RateMode::per_frame(move |req: &RateRequest| {
        if let Some(prev) = req.prev {
            sink.lock().unwrap().push(prev.bits);
        }
        26u8
    });
    let mut enc = codec.start_encode(mode);
    for frame in seq.frames() {
        enc.push_frame(frame).unwrap();
    }
    let stats = enc.finish().unwrap();
    let fed_back = observed.lock().unwrap().clone();
    assert_eq!(
        fed_back,
        stats.bits_per_frame[..3],
        "callback must see the exact serialized bit counts"
    );
}

/// The hybrid QP wire domain is the full byte range (the quantizer
/// step extrapolates beyond the useful 0..=51, and the fixed-rate API
/// always accepted it): a controller handing back an ultra-coarse QP
/// mid-stream must round-trip, not strand the decoder.
#[test]
fn ultra_coarse_qp_from_a_controller_roundtrips() {
    let codec = HybridCodec::new(Profile::hevc_like());
    let seq = hybrid_seq(3);
    let mode = RateMode::per_frame(|req: &RateRequest| match req.frame_index {
        0 => 24u8,
        _ => 200u8, // far beyond the useful 0..=51, still decodable
    });
    let mut enc = codec.start_encode(mode);
    let mut packets = Vec::new();
    for frame in seq.frames() {
        packets.push(enc.push_frame(frame).unwrap().to_bytes());
    }
    let stats = enc.finish().unwrap();
    assert_eq!(stats.rate_per_frame, vec![24, 200, 200]);
    let decoded = decode_all(&codec, &packets);
    assert_eq!(decoded.len(), 3, "in-band QP switch must decode end to end");
}

/// StreamStats invariants for the new per-frame columns: aligned with
/// the bit counts, consistent with the packet kinds, and the bit sums
/// still reconcile with the serialized stream.
#[test]
fn stream_stats_columns_align_with_bits() {
    let codec = HybridCodec::new(Profile::hevc_like());
    let seq = hybrid_seq(6);
    let (packets, stats) = encode_with_gops(&codec, &seq, RateMode::Fixed(24u8), 3);
    assert_eq!(stats.frame_types.len(), stats.frames);
    assert_eq!(stats.rate_per_frame.len(), stats.frames);
    assert_eq!(stats.bits_per_frame.len(), stats.frames);
    assert_eq!(
        stats.bits_per_frame.iter().sum::<u64>(),
        8 * stats.total_bytes as u64
    );
    assert_eq!(
        packets.iter().map(Vec::len).sum::<usize>(),
        stats.total_bytes
    );
    // GOP restarts every 3 frames → intras at 0 and 3.
    let intras: Vec<usize> = stats
        .frame_types
        .iter()
        .enumerate()
        .filter(|(_, k)| **k == FrameKind::Intra)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(intras, vec![0, 3]);
    // Intra frames must absorb more bits than the P frames around them.
    assert!(stats.bits_per_frame[0] > stats.bits_per_frame[1]);
    assert!(stats.bits_per_frame[3] > stats.bits_per_frame[4]);
    // Fixed mode: one rate everywhere.
    assert!(stats.rate_per_frame.iter().all(|&r| r == 24));
}

/// Target-bpp mode on the (cheap) hybrid codec: the trailing 2-GOP
/// window converges to within ±10 % of the requested target, and the
/// controller is deterministic — a replay produces byte-identical
/// packets.
#[test]
fn hybrid_target_bpp_converges_and_replays_bit_exact() {
    let gop = 8;
    let frames = 3 * gop;
    let codec = HybridCodec::new(Profile::hevc_like());
    let seq = hybrid_seq(frames);
    let px = 64 * 48;
    let tail = |stats: &StreamStats| -> f64 {
        let bits: u64 = stats.bits_per_frame[gop..].iter().sum();
        bits as f64 / ((frames - gop) * px) as f64
    };
    let (_, lo) = encode_with_gops(&codec, &seq, RateMode::Fixed(28u8), gop);
    let (_, hi) = encode_with_gops(&codec, &seq, RateMode::Fixed(22u8), gop);
    let target = 0.5 * (tail(&lo) + tail(&hi));
    let mode = || RateMode::TargetBpp {
        bpp: target,
        window: gop,
    };
    let (packets, stats) = encode_with_gops(&codec, &seq, mode(), gop);
    let achieved = tail(&stats);
    let err = (achieved - target).abs() / target;
    assert!(
        err < 0.10,
        "target {target:.4} bpp, trailing-2-GOP mean {achieved:.4} bpp ({:.1} % off)",
        err * 100.0
    );
    assert!(
        stats
            .rate_per_frame
            .iter()
            .any(|&q| q != stats.rate_per_frame[0]),
        "a closed-loop stream between two fixed rates must actually dither"
    );
    // Deterministic: a second run is byte-identical.
    let (replay, _) = encode_with_gops(&codec, &seq, mode(), gop);
    assert_eq!(packets, replay, "controller replay must be bit-exact");
    // And the adaptive stream decodes cleanly.
    let decoded = decode_all(&codec, &packets);
    assert_eq!(decoded.len(), frames);
}

/// Target-bpp mode on the learned codec: the stream stays decodable,
/// the rate trace responds, and the decoder follows every in-band
/// switch (the full convergence gate runs in release as
/// `ratecontrol --quick`).
#[test]
fn ctvc_target_bpp_stream_decodes_with_rate_trace() {
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let seq = ctvc_seq(5);
    let (packets, stats) = encode_with_gops(
        &codec,
        &seq,
        RateMode::TargetBpp {
            bpp: 0.5,
            window: 4,
        },
        5,
    );
    assert_eq!(stats.rate_per_frame.len(), 5);
    assert!(stats
        .rate_per_frame
        .iter()
        .all(|&r| r <= RatePoint::MAX_INDEX));
    let mut dec = codec.start_decode();
    for (i, p) in packets.iter().enumerate() {
        dec.push_packet(p).unwrap();
        assert_eq!(dec.last_rate(), Some(stats.rate_per_frame[i]));
    }
}

/// `set_rate_mode` + `restart_gop` mid-stream (the in-process form of
/// the wire retarget): the switch lands on an intra anchor, the stream
/// decodes, and a replay is byte-identical.
#[test]
fn in_process_retarget_with_intra_refresh_replays_bit_exact() {
    let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let seq = ctvc_seq(4);
    let run = || {
        let mut enc = codec.start_encode(RatePoint::new(1));
        let mut packets = Vec::new();
        for (i, frame) in seq.frames().iter().enumerate() {
            if i == 2 {
                enc.set_rate_mode(RateMode::Fixed(RatePoint::new(2)));
                enc.restart_gop();
            }
            packets.push(enc.push_frame(frame).unwrap().to_bytes());
        }
        (packets, enc.finish().unwrap())
    };
    let (packets, stats) = run();
    assert_eq!(stats.rate_per_frame, vec![1, 1, 2, 2]);
    assert_eq!(
        stats.frame_types,
        vec![
            FrameKind::Intra,
            FrameKind::Predicted,
            FrameKind::Intra,
            FrameKind::Predicted
        ]
    );
    let decoded = decode_all(&codec, &packets);
    assert_eq!(decoded.len(), 4);
    let (replay, _) = run();
    assert_eq!(packets, replay, "retargeted stream must replay bit-exact");
}
