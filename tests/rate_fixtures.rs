//! Byte-identity of [`RateMode::Fixed`] streams against golden
//! bitstreams captured *before* the rate-control redesign (PR 4 format):
//! the pluggable-controller API must cost fixed-rate streams nothing —
//! not one byte, at any thread count, for either codec family.

use nvc_baseline::{HybridCodec, Profile};
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_video::rate::RateMode;
use nvc_video::synthetic::{SceneConfig, Synthesizer};

#[test]
fn ctvc_fixed_mode_matches_pre_redesign_fixture_at_every_thread_count() {
    let golden = include_bytes!("data/ctvc_fp8_48x32x4_r1.bin").to_vec();
    let seq = Synthesizer::new(SceneConfig::uvg_like(48, 32, 4)).generate();
    for threads in [1, 2, 0] {
        let codec = CtvcCodec::new(CtvcConfig::ctvc_fp(8).with_threads(threads)).unwrap();
        let coded = codec.encode(&seq, RatePoint::new(1)).unwrap();
        assert_eq!(
            coded.bitstream, golden,
            "CTVC fixed-rate stream diverged from the PR 4 fixture (threads = {threads})"
        );
        // The explicit RateMode::Fixed spelling is the same code path.
        let via_mode = nvc_video::codec::encode_sequence_with(
            &codec,
            &seq,
            RateMode::Fixed(RatePoint::new(1)),
        )
        .unwrap();
        assert_eq!(via_mode.to_bytes(), golden);
    }
}

#[test]
fn hybrid_fixed_mode_matches_pre_redesign_fixture_at_every_thread_count() {
    let golden = include_bytes!("data/hybrid_hevc_64x48x3_qp24.bin").to_vec();
    let seq = Synthesizer::new(SceneConfig::uvg_like(64, 48, 3)).generate();
    for threads in [1, 2, 0] {
        let codec = HybridCodec::with_threads(Profile::hevc_like(), threads);
        let coded = codec.encode(&seq, 24).unwrap();
        assert_eq!(
            coded.bitstream, golden,
            "hybrid fixed-rate stream diverged from the PR 4 fixture (threads = {threads})"
        );
        let via_mode =
            nvc_video::codec::encode_sequence_with(&codec, &seq, RateMode::Fixed(24u8)).unwrap();
        assert_eq!(via_mode.to_bytes(), golden);
    }
}

#[test]
fn fixture_streams_still_decode() {
    let ctvc = CtvcCodec::new(CtvcConfig::ctvc_fp(8)).unwrap();
    let decoded = ctvc
        .decode(include_bytes!("data/ctvc_fp8_48x32x4_r1.bin"))
        .unwrap();
    assert_eq!(decoded.frames().len(), 4);
    let hybrid = HybridCodec::new(Profile::hevc_like());
    let decoded = hybrid
        .decode(include_bytes!("data/hybrid_hevc_64x48x3_qp24.bin"))
        .unwrap();
    assert_eq!(decoded.frames().len(), 3);
}
