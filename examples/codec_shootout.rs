//! Codec shoot-out: the Table I ladder on one sequence — classical
//! profiles vs the learned variants, at comparable rates. Every codec
//! runs through the *same* generic streaming-session path (the
//! [`VideoCodec`] trait), so the harness is one function regardless of
//! codec family.
//!
//! Run with: `cargo run --release --example codec_shootout`

#![forbid(unsafe_code)]

use nvc_baseline::{HybridCodec, Profile};
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_video::codec::{stream_roundtrip, VideoCodec};
use nvc_video::metrics::psnr_sequence;
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::Sequence;

/// Encode + streaming-decode `seq` with any codec and print one ladder row.
fn run<C: VideoCodec>(name: &str, codec: &C, rate: C::Rate, seq: &Sequence) {
    let (coded, drift) = stream_roundtrip(codec, seq, rate).expect("stream roundtrip");
    assert_eq!(drift, 0.0, "{name}: streaming decode drifted");
    let pairs: Vec<_> = seq.frames().iter().zip(coded.decoded.frames()).collect();
    println!(
        "{name:<22} {:>8.4} bpp  {:>6.2} dB  ({} packets)",
        coded.stats.bpp(seq.pixels_per_frame()),
        psnr_sequence(&pairs).expect("matched sequences"),
        coded.packets.len(),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A realistic GOP: with only a few frames the (expensive) intra frame
    // dominates the learned codecs' rate.
    let seq = Synthesizer::new(SceneConfig::hevc_b_like(96, 64, 16)).generate();
    println!(
        "sequence: HEVC-B-like, {}x{}, {} frames\n",
        seq.width(),
        seq.height(),
        seq.frames().len()
    );

    for (name, profile, qp) in [
        ("H.264-like", Profile::avc_like(), 28u8),
        ("H.265-like", Profile::hevc_like(), 28),
    ] {
        run(name, &HybridCodec::new(profile), qp, &seq);
    }

    for (name, cfg) in [
        ("DVC-like", CtvcConfig::dvc_like(12)),
        ("FVC-like", CtvcConfig::fvc_like(12)),
        ("CTVC-Net(FP)", CtvcConfig::ctvc_fp(12)),
        ("CTVC-Net(FXP)", CtvcConfig::ctvc_fxp(12)),
        ("CTVC-Net(Sparse)", CtvcConfig::ctvc_sparse(12)),
    ] {
        run(name, &CtvcCodec::new(cfg)?, RatePoint::new(1), &seq);
    }

    println!("\nThe learned variants spend far fewer bits per P frame; their quality");
    println!("ceiling reflects the analytic (untrained) weights — see EXPERIMENTS.md");
    println!("E1 and `cargo run -p nvc-bench --bin fig8_rd_curves` for full curves.");
    Ok(())
}
