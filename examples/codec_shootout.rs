//! Codec shoot-out: the Table I ladder on one sequence — classical
//! profiles vs the learned variants, at comparable rates.
//!
//! Run with: `cargo run --release --example codec_shootout`

use nvc_baseline::{HybridCodec, Profile};
use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_video::metrics::psnr_sequence;
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::Sequence;

fn report(name: &str, seq: &Sequence, rec: &Sequence, bpp: f64) {
    let pairs: Vec<_> = seq.frames().iter().zip(rec.frames()).collect();
    let pairs: Vec<_> = pairs.iter().map(|(a, b)| (*a, *b)).collect();
    println!(
        "{name:<22} {bpp:>8.4} bpp  {:>6.2} dB",
        psnr_sequence(&pairs).expect("matched sequences")
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A realistic GOP: with only a few frames the (expensive) intra frame
    // dominates the learned codecs' rate.
    let seq = Synthesizer::new(SceneConfig::hevc_b_like(96, 64, 16)).generate();
    println!("sequence: HEVC-B-like, {}x{}, {} frames\n", seq.width(), seq.height(), seq.frames().len());

    for (name, profile, qp) in [
        ("H.264-like", Profile::avc_like(), 28u8),
        ("H.265-like", Profile::hevc_like(), 28),
    ] {
        let codec = HybridCodec::new(profile);
        let coded = codec.encode(&seq, qp)?;
        report(name, &seq, &coded.decoded, coded.bpp);
    }

    for (name, cfg) in [
        ("DVC-like", CtvcConfig::dvc_like(12)),
        ("FVC-like", CtvcConfig::fvc_like(12)),
        ("CTVC-Net(FP)", CtvcConfig::ctvc_fp(12)),
        ("CTVC-Net(FXP)", CtvcConfig::ctvc_fxp(12)),
        ("CTVC-Net(Sparse)", CtvcConfig::ctvc_sparse(12)),
    ] {
        let codec = CtvcCodec::new(cfg)?;
        let coded = codec.encode(&seq, RatePoint::new(1))?;
        report(name, &seq, &coded.decoded, coded.bpp);
    }

    println!("\nThe learned variants spend far fewer bits per P frame; their quality");
    println!("ceiling reflects the analytic (untrained) weights — see EXPERIMENTS.md");
    println!("E1 and `cargo run -p nvc-bench --bin fig8_rd_curves` for full curves.");
    Ok(())
}
