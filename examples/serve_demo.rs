//! Serving demo: spawn an `nvc-serve` server and three concurrent
//! clients in one process — a remote-*decode* stream (packets up, frames
//! back), a fixed-rate remote-*encode* stream (frames up, packets back)
//! and a *closed-loop* encode stream steering toward a bpp target with a
//! mid-stream retarget — then print per-stream PSNR, bpp and the rate
//! trace the controller chose. A second phase runs a *broadcast*: one
//! publisher encodes the clip once while three subscribers (one joining
//! late, mid-GOP) receive the identical packet bytes.
//!
//! Run with: `cargo run --release --example serve_demo`

#![forbid(unsafe_code)]

use nvc_model::{CtvcCodec, CtvcConfig, RatePoint};
use nvc_serve::{Hello, Retarget, ServeConfig, Server, StreamClient, SubscribeClient};
use nvc_video::codec::{encode_sequence, DecoderSession};
use nvc_video::metrics::psnr_sequence;
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvc_video::{Frame, Sequence};

const W: usize = 96;
const H: usize = 64;

fn mean_psnr(a: &Sequence, b: &[Frame]) -> f64 {
    let pairs: Vec<_> = a.frames().iter().zip(b).collect();
    psnr_sequence(&pairs).expect("matched sequences")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = CtvcConfig::ctvc_fp(8);
    let server = Server::spawn(
        "127.0.0.1:0",
        ServeConfig {
            ctvc: cfg.clone(),
            workers: 2,
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServeConfig::default()
        },
    )?;
    println!("nvc-serve listening on {}", server.addr());
    let metrics_addr = server.metrics_addr().expect("metrics endpoint configured");
    println!("live metrics on      {metrics_addr}");

    let source = Synthesizer::new(SceneConfig::uvg_like(W, H, 6)).generate();
    let codec = CtvcCodec::new(cfg)?; // local twin for encode + verification

    std::thread::scope(|scope| {
        // Stream A: encode locally at r1, let the *server* decode.
        let stream_a = scope.spawn(|| {
            let coded = encode_sequence(&codec, &source, RatePoint::new(1)).expect("encode");
            let mut client =
                StreamClient::connect(server.addr(), Hello::ctvc_decode(1, W, H)).expect("connect");
            for packet in &coded.packets {
                client.send_packet(packet).expect("send");
            }
            let summary = client.finish().expect("finish");
            let exact = summary
                .frames
                .iter()
                .zip(coded.decoded.frames())
                .all(|(a, b)| a.tensor().as_slice() == b.tensor().as_slice());
            (
                mean_psnr(&source, &summary.frames),
                coded.stats.bpp(W * H),
                summary.latencies.len(),
                exact,
            )
        });

        // Stream B: ship raw frames, let the *server* encode at r2.
        let stream_b = scope.spawn(|| {
            let mut client =
                StreamClient::connect(server.addr(), Hello::ctvc_encode(2, W, H)).expect("connect");
            for frame in source.frames() {
                client.send_frame(frame).expect("send");
            }
            let summary = client.finish().expect("finish");
            // Decode the returned packets with the local twin codec.
            let mut dec = codec.start_decode();
            let frames: Vec<Frame> = summary
                .packets
                .iter()
                .map(|p| dec.push_packet(&p.to_bytes()).expect("decode"))
                .collect();
            (
                mean_psnr(&source, &frames),
                summary.stats.bpp(W * H),
                summary.latencies.len(),
                true,
            )
        });

        // Stream C: closed-loop encode toward a bpp target, retargeted
        // (with an intra refresh) halfway through the stream.
        let stream_c = scope.spawn(|| {
            let hello = Hello::ctvc_encode(1, W, H).with_target_bpp(0.6, 4);
            let mut client = StreamClient::connect(server.addr(), hello).expect("connect");
            for (i, frame) in source.frames().iter().enumerate() {
                if i == source.frames().len() / 2 {
                    client
                        .retarget(Retarget::target_bpp(0.9, 4).with_restart())
                        .expect("retarget");
                }
                client.send_frame(frame).expect("send");
            }
            let summary = client.finish().expect("finish");
            let mut dec = codec.start_decode();
            let frames: Vec<Frame> = summary
                .packets
                .iter()
                .map(|p| dec.push_packet(&p.to_bytes()).expect("decode"))
                .collect();
            (
                mean_psnr(&source, &frames),
                summary.stats.bpp(W * H),
                summary.stats.rate_per_frame.clone(),
            )
        });

        let (psnr_a, bpp_a, n_a, exact_a) = stream_a.join().expect("stream A");
        let (psnr_b, bpp_b, n_b, exact_b) = stream_b.join().expect("stream B");
        let (psnr_c, bpp_c, rates_c) = stream_c.join().expect("stream C");
        println!(
            "stream A (server decodes, r1): {n_a} frames, {psnr_a:.2} dB PSNR, \
             {bpp_a:.4} bpp, bit-exact with in-process loop: {exact_a}"
        );
        println!(
            "stream B (server encodes, r2): {n_b} frames, {psnr_b:.2} dB PSNR, \
             {bpp_b:.4} bpp, decodable locally: {exact_b}"
        );
        println!(
            "stream C (closed loop, 0.6 -> 0.9 bpp retarget): {psnr_c:.2} dB PSNR, \
             {bpp_c:.4} bpp, rate trace {rates_c:?}"
        );
    });

    // Mid-run observability: the server is still live — scrape the
    // metrics endpoint the way an external collector would and show
    // the counters plus the histogram quantile summaries (the full
    // bucket series is elided for readability).
    let scrape = nvc_serve::scrape_metrics(metrics_addr)?;
    println!("\nlive metrics after the stream phase (bucket series elided):");
    for line in scrape.lines().filter(|line| {
        (!line.starts_with('#') && !line.contains("_bucket{")) || line.contains(": p50=")
    }) {
        println!("  {line}");
    }
    println!();

    // Broadcast phase: one publisher, three subscribers. The stream is
    // encoded once; every subscriber gets the same bytes. The third
    // subscriber attaches mid-stream and starts at the most recent
    // intra rather than the stream head.
    std::thread::scope(|scope| {
        let mut publisher = StreamClient::connect(
            server.addr(),
            Hello::ctvc_publish(1, W, H, "demo").with_gop(4),
        )
        .expect("connect publisher");
        let early: Vec<_> = (0..2)
            .map(|i| {
                let sub = SubscribeClient::connect(server.addr(), Hello::subscribe("demo", W, H))
                    .expect("subscribe");
                scope.spawn(move || (i, sub.collect().expect("collect")))
            })
            .collect();

        // Publish five frames (the GOP of 4 puts intras at 0 and 4),
        // *then* attach the late joiner: it must start at frame 4.
        for frame in &source.frames()[..5] {
            publisher.send_frame(frame).expect("send");
        }
        publisher.drain().expect("publish the backlog");
        let late = SubscribeClient::connect(server.addr(), Hello::subscribe("demo", W, H))
            .expect("late subscribe");
        let late_start = late.join().start_index;
        let late_reader = scope.spawn(move || late.collect().expect("late collect"));

        publisher.send_frame(&source.frames()[5]).expect("send");
        let published = publisher.finish().expect("finish publish");

        for handle in early {
            let (i, summary) = handle.join().expect("subscriber");
            let identical = summary
                .packets
                .iter()
                .zip(&published.packets)
                .all(|(a, b)| a.to_bytes() == b.to_bytes());
            println!(
                "subscriber {i} (from start): {} packets, byte-identical to publisher: {identical}",
                summary.packets.len()
            );
        }
        let tail = late_reader.join().expect("late subscriber");
        let mut dec = codec.start_decode();
        let decodable = tail
            .packets
            .iter()
            .all(|p| dec.push_packet(&p.to_bytes()).is_ok());
        println!(
            "subscriber 2 (late join):   {} packets from intra at frame {late_start}, \
             decodable from the join point: {decodable}",
            tail.packets.len()
        );
    });

    let report = server.shutdown();
    println!(
        "server report: {} sessions, {} frames, {} subscribers, {} evicted, {} errors",
        report.sessions, report.frames, report.subscribers, report.evicted, report.errors
    );
    println!(
        "poller report: {} wakeups ({} spurious), {} sockets registered at peak, \
         {} timer fires",
        report.poll_wakeups, report.spurious_polls, report.max_registered, report.timer_fires
    );
    Ok(())
}
