//! Quickstart: encode a synthetic clip with CTVC-Net (one-shot and
//! streaming), decode it, measure quality, and ask the NVCA simulator
//! what the hardware would do.
//!
//! Run with: `cargo run --release --example quickstart`

#![forbid(unsafe_code)]

use nvc_model::{CtvcConfig, RatePoint};
use nvc_sim::Dataflow;
use nvc_video::codec::{DecoderSession, EncoderSession};
use nvc_video::metrics::{ms_ssim_sequence, psnr_sequence};
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvca::Nvca;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small synthetic clip (UVG-like preset).
    let seq = Synthesizer::new(SceneConfig::uvg_like(96, 64, 4)).generate();
    println!(
        "source: {}x{}, {} frames",
        seq.width(),
        seq.height(),
        seq.frames().len()
    );

    // 2. Deploy the sparse CTVC-Net on the paper's accelerator design.
    let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(12))?;

    // 3. Encode and decode through the real bitstream.
    let coded = nvca.codec().encode(&seq, RatePoint::new(1))?;
    let decoded = nvca.codec().decode(&coded.bitstream)?;
    let pairs: Vec<_> = seq.frames().iter().zip(decoded.frames()).collect();
    let pairs: Vec<_> = pairs.iter().map(|(a, b)| (*a, *b)).collect();
    println!(
        "coded {} bytes ({:.4} bpp): {:.2} dB PSNR, {:.4} MS-SSIM",
        coded.total_bytes,
        coded.bpp,
        psnr_sequence(&pairs)?,
        ms_ssim_sequence(&pairs)?
    );

    // 4. The same codec, streaming: push frames, pull CRC-protected
    //    packets, decode them one at a time on the other side.
    let mut enc = nvca.codec().start_encode(RatePoint::new(1));
    let mut dec = nvca.codec().start_decode();
    for (i, frame) in seq.frames().iter().enumerate() {
        let packet = enc.push_frame(frame)?;
        let rec = dec.push_packet(&packet.to_bytes())?;
        println!(
            "  frame {i}: {:?} packet, {} bytes -> decoded {}x{}",
            packet.kind,
            packet.encoded_len(),
            rec.width(),
            rec.height()
        );
    }
    let stats = enc.finish()?;
    println!(
        "streamed {} frames, {} bytes total",
        stats.frames, stats.total_bytes
    );

    // 5. Hardware: what does decoding the packet stream cost on NVCA?
    let stream_rep = nvca.simulate_decode_stream(&coded.bitstream, Dataflow::Chained)?;
    println!(
        "NVCA decode of this stream: {:.0} fps sustained, {:.2} KB off-chip",
        stream_rep.fps,
        stream_rep.dram_bytes as f64 / 1e3
    );

    // 6. Hardware: what does decoding 1080p cost on NVCA?
    let report = nvca.simulate_decode(1088, 1920, Dataflow::Chained);
    println!(
        "NVCA @1080p: {:.1} fps, {:.2} W chip power, {:.0} GOPS, {:.0} GOPS/W, {:.1} MB off-chip/frame",
        report.fps,
        report.power_w,
        report.physical_gops,
        report.gops_per_watt,
        report.dram_bytes as f64 / 1e6
    );
    Ok(())
}
