//! Accelerator design-space exploration: sweep the SCU array size and
//! sparsity of the NVCA design and watch fps / power / area move — the
//! co-design loop the paper's §IV enables.
//!
//! Run with: `cargo run --release --example accelerator_explorer`

use nvc_model::CtvcConfig;
use nvc_sim::{Dataflow, NvcaConfig};
use nvca::Nvca;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("NVCA design-space sweep, CTVC-Net decode @1080p, chained dataflow\n");
    println!(
        "{:>10} {:>6} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "array", "rho", "fps", "GOPS", "chip W", "GOPS/W", "gates M"
    );
    for (pif, pof) in [(8, 8), (12, 12), (16, 16)] {
        for rho in [0.0, 0.5] {
            let mut hw = NvcaConfig::paper();
            hw.pif = pif;
            hw.pof = pof;
            hw.rho = rho;
            let mut model = CtvcConfig::ctvc_sparse(36);
            model.sparsity = if rho > 0.0 { Some(rho) } else { None };
            let nvca = Nvca::new(model, hw.clone())?;
            let rep = nvca.simulate_decode(1088, 1920, Dataflow::Chained);
            println!(
                "{:>7}x{:<2} {:>5.0}% {:>8.1} {:>10.0} {:>10.2} {:>10.0} {:>10.2}",
                pif,
                pof,
                rho * 100.0,
                rep.fps,
                rep.physical_gops,
                rep.power_w,
                rep.gops_per_watt,
                hw.gate_count_m()
            );
        }
    }
    println!("\nThe paper's 12x12 @ rho=50% point balances real-time 1080p decoding");
    println!("against area: doubling the array helps little once the workload");
    println!("becomes memory-bound, while sparsity halves multiplier area outright.");
    Ok(())
}
