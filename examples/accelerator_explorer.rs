//! Accelerator design-space exploration: sweep the SCU array size and
//! sparsity of the NVCA design and watch fps / power / area move — the
//! co-design loop the paper's §IV enables — then stream a real packetized
//! bitstream through the simulator packet by packet.
//!
//! Run with: `cargo run --release --example accelerator_explorer`

#![forbid(unsafe_code)]

use nvc_model::{CtvcConfig, RatePoint};
use nvc_sim::{Dataflow, NvcaConfig};
use nvc_video::synthetic::{SceneConfig, Synthesizer};
use nvca::Nvca;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("NVCA design-space sweep, CTVC-Net decode @1080p, chained dataflow\n");
    println!(
        "{:>10} {:>6} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "array", "rho", "fps", "GOPS", "chip W", "GOPS/W", "gates M"
    );
    for (pif, pof) in [(8, 8), (12, 12), (16, 16)] {
        for rho in [0.0, 0.5] {
            let mut hw = NvcaConfig::paper();
            hw.pif = pif;
            hw.pof = pof;
            hw.rho = rho;
            let mut model = CtvcConfig::ctvc_sparse(36);
            model.sparsity = if rho > 0.0 { Some(rho) } else { None };
            let nvca = Nvca::new(model, hw.clone())?;
            let rep = nvca.simulate_decode(1088, 1920, Dataflow::Chained);
            println!(
                "{:>7}x{:<2} {:>5.0}% {:>8.1} {:>10.0} {:>10.2} {:>10.0} {:>10.2}",
                pif,
                pof,
                rho * 100.0,
                rep.fps,
                rep.physical_gops,
                rep.power_w,
                rep.gops_per_watt,
                hw.gate_count_m()
            );
        }
    }
    println!("\nThe paper's 12x12 @ rho=50% point balances real-time 1080p decoding");
    println!("against area: doubling the array helps little once the workload");
    println!("becomes memory-bound, while sparsity halves multiplier area outright.");

    // Per-packet view: encode a clip, then map each packet's decode onto
    // the simulator — intra packets only exercise frame reconstruction,
    // so they are far cheaper than predicted packets.
    println!("\nPer-packet decode cost on the paper design (64x48 stream):");
    let nvca = Nvca::paper_design(CtvcConfig::ctvc_sparse(12))?;
    let seq = Synthesizer::new(SceneConfig::uvg_like(64, 48, 4)).generate();
    let coded = nvca.codec().encode(&seq, RatePoint::new(1))?;
    let rep = nvca.simulate_decode_stream(&coded.bitstream, Dataflow::Chained)?;
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12}",
        "frame", "type", "bytes", "cycles", "KB offchip"
    );
    for f in &rep.frames {
        println!(
            "{:>6} {:>10} {:>12} {:>12} {:>12.1}",
            f.frame_index,
            format!("{:?}", f.kind),
            f.payload_bytes,
            f.report.total_cycles,
            f.report.dram_bytes as f64 / 1e3
        );
    }
    println!(
        "stream: {} frames, {:.0} fps sustained, {:.1} KB off-chip total",
        rep.frames.len(),
        rep.fps,
        rep.dram_bytes as f64 / 1e3
    );
    Ok(())
}
